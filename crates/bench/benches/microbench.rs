//! Criterion microbenchmarks (experiment M1 in DESIGN.md): throughput of
//! the substrates and the scheduler hot paths, plus a scheduler-vs-
//! scheduler end-to-end emulation cost comparison.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pstm_core::gtm::{Gtm, GtmConfig};
use pstm_core::reconcile::reconcile;
use pstm_lock::{LockManager, LockMode};
use pstm_sim::{GtmBackend, Runner, RunnerConfig, TwoPlBackend};
use pstm_storage::btree::BTreeIndex;
use pstm_storage::{Database, HeapFile, LogRecord, Page, Row, RowId, Wal};
use pstm_twopl::{TwoPlConfig, TwoPlManager};
use pstm_types::{Duration, ObjectId, OpClass, ResourceId, ScalarOp, Timestamp, TxnId, Value};
use pstm_workload::{counter_world, PaperWorkload};

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");

    g.bench_function("page_insert_100b", |b| {
        let rec = [7u8; 100];
        b.iter_batched(
            Page::new,
            |mut page| {
                while page.insert(&rec).is_some() {}
                page
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("heap_insert_row", |b| {
        let row = Row::new(vec![Value::Int(1), Value::Int(100), Value::Text("flight".into())]);
        b.iter_batched(
            HeapFile::new,
            |mut heap| {
                for _ in 0..256 {
                    heap.insert(&row).unwrap();
                }
                heap
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("heap_get_hot_row", |b| {
        let mut heap = HeapFile::new();
        let row = Row::new(vec![Value::Int(1), Value::Int(100)]);
        let mut last = RowId::new(0, 0);
        for _ in 0..1_000 {
            last = heap.insert(&row).unwrap();
        }
        b.iter(|| heap.get(std::hint::black_box(last)).unwrap());
    });

    g.bench_function("btree_insert_1k", |b| {
        b.iter_batched(
            BTreeIndex::new,
            |mut t| {
                for i in 0..1_000i64 {
                    t.insert(Value::Int(i), RowId::from_raw(i as u64));
                }
                t
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("btree_point_lookup", |b| {
        let mut t = BTreeIndex::new();
        for i in 0..10_000i64 {
            t.insert(Value::Int(i), RowId::from_raw(i as u64));
        }
        let key = Value::Int(7_777);
        b.iter(|| t.get(std::hint::black_box(&key)));
    });

    g.bench_function("btree_range_100_of_10k", |b| {
        let mut t = BTreeIndex::new();
        for i in 0..10_000i64 {
            t.insert(Value::Int(i), RowId::from_raw(i as u64));
        }
        let (lo, hi) = (Value::Int(5_000), Value::Int(5_099));
        b.iter(|| {
            t.range(
                std::ops::Bound::Included(std::hint::black_box(&lo)),
                std::ops::Bound::Included(std::hint::black_box(&hi)),
            )
        });
    });

    g.bench_function("recovery_replay_1k_updates", |b| {
        use pstm_storage::{ColumnDef, Row, TableSchema};
        use pstm_types::ValueKind;
        b.iter_batched(
            || {
                let db = Database::new();
                let schema = TableSchema::new(
                    "T",
                    vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("v", ValueKind::Int)],
                )
                .unwrap();
                let t = db.create_table(schema, vec![]).unwrap();
                let boot = TxnId(1);
                db.begin(boot).unwrap();
                let row = db.insert(boot, t, Row::new(vec![Value::Int(0), Value::Int(0)])).unwrap();
                db.commit(boot).unwrap();
                db.checkpoint().unwrap();
                for i in 0..1_000u64 {
                    let txn = TxnId(10 + i);
                    db.begin(txn).unwrap();
                    db.update(txn, t, row, 1, Value::Int(i as i64)).unwrap();
                    db.commit(txn).unwrap();
                }
                db
            },
            |db| {
                db.simulate_crash_and_recover().unwrap();
                db
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("wal_append_update", |b| {
        let rec = LogRecord::Update {
            txn: TxnId(1),
            table: pstm_storage::TableId(0),
            row_id: RowId::new(0, 0),
            column: 1,
            before: Value::Int(100),
            after: Value::Int(99),
        };
        b.iter_batched(
            Wal::new,
            |mut wal| {
                for _ in 0..256 {
                    wal.append(&rec).unwrap();
                }
                wal
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("engine_update_roundtrip", |b| {
        let world = counter_world(1, 1_000_000).unwrap();
        let bind = world.bindings.resolve(world.resources[0]).unwrap();
        let db: &Database = &world.db;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let txn = TxnId(1_000 + i);
            db.begin(txn).unwrap();
            db.update(txn, bind.table, bind.row, bind.column, Value::Int(i as i64)).unwrap();
            db.commit(txn).unwrap();
        });
    });

    g.finish();
}

fn bench_lock_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock");
    let r = ResourceId::atomic(ObjectId(0));

    g.bench_function("grant_release_uncontended", |b| {
        let mut lm = LockManager::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let t = TxnId(i);
            lm.request(t, r, LockMode::Exclusive, Timestamp::ZERO).unwrap();
            lm.release_all(t);
        });
    });

    g.bench_function("contended_queue_drain_32", |b| {
        b.iter_batched(
            || {
                let mut lm = LockManager::new();
                for i in 1..=32u64 {
                    lm.request(TxnId(i), r, LockMode::Exclusive, Timestamp::ZERO).unwrap();
                }
                lm
            },
            |mut lm| {
                for i in 1..=32u64 {
                    lm.release_all(TxnId(i));
                }
                lm
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("deadlock_detection_no_cycle_64_waiters", |b| {
        let mut lm = LockManager::new();
        for obj in 0..8u32 {
            let res = ResourceId::atomic(ObjectId(obj));
            lm.request(TxnId(1_000 + obj as u64), res, LockMode::Exclusive, Timestamp::ZERO)
                .unwrap();
            for w in 0..8u64 {
                lm.request(
                    TxnId(2_000 + obj as u64 * 8 + w),
                    res,
                    LockMode::Exclusive,
                    Timestamp::ZERO,
                )
                .unwrap();
            }
        }
        b.iter(|| lm.detect_deadlock());
    });

    g.finish();
}

fn bench_gtm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gtm");

    g.bench_function("reconcile_addsub", |b| {
        let (temp, read, perm) = (Value::Int(104), Value::Int(100), Value::Int(250));
        b.iter(|| reconcile(OpClass::UpdateAddSub, &temp, &read, &perm).unwrap());
    });

    g.bench_function("invoke_commit_cycle", |b| {
        let world = counter_world(1, i64::MAX / 2).unwrap();
        let r = world.resources[0];
        let mut gtm = Gtm::new(world.db.clone(), world.bindings.clone(), GtmConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let t = TxnId(i);
            gtm.begin(t, Timestamp::ZERO).unwrap();
            gtm.execute(t, r, ScalarOp::Sub(Value::Int(1)), Timestamp::ZERO).unwrap();
            gtm.commit(t, Timestamp(i)).unwrap();
        });
    });

    g.bench_function("shared_grant_32_holders", |b| {
        b.iter_batched(
            || {
                let world = counter_world(1, 1_000_000).unwrap();
                let r = world.resources[0];
                let gtm = Gtm::new(world.db.clone(), world.bindings.clone(), GtmConfig::default());
                (gtm, r)
            },
            |(mut gtm, r)| {
                for i in 1..=32u64 {
                    gtm.begin(TxnId(i), Timestamp::ZERO).unwrap();
                    gtm.execute(TxnId(i), r, ScalarOp::Sub(Value::Int(1)), Timestamp::ZERO)
                        .unwrap();
                }
                for i in 1..=32u64 {
                    gtm.commit(TxnId(i), Timestamp(i)).unwrap();
                }
                gtm
            },
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulation");
    g.sample_size(10);

    let workload = PaperWorkload {
        n_txns: 100,
        alpha: 0.7,
        beta: 0.05,
        interarrival: Duration::from_secs_f64(0.2),
        ..PaperWorkload::default()
    };

    g.bench_function("gtm_100txn", |b| {
        b.iter(|| {
            let world = counter_world(5, 100_000).unwrap();
            let scripts = workload.scripts(&world.resources);
            let gtm = Gtm::new(world.db.clone(), world.bindings, GtmConfig::default());
            Runner::new(GtmBackend(gtm), scripts, RunnerConfig::default()).run().unwrap()
        });
    });

    g.bench_function("twopl_100txn", |b| {
        b.iter(|| {
            let world = counter_world(5, 100_000).unwrap();
            let scripts = workload.scripts(&world.resources);
            let config = TwoPlConfig {
                sleep_timeout: Some(Duration::from_secs_f64(5.0)),
                ..TwoPlConfig::default()
            };
            let tp = TwoPlManager::new(world.db.clone(), world.bindings, config);
            Runner::new(TwoPlBackend(tp), scripts, RunnerConfig::default()).run().unwrap()
        });
    });

    g.finish();
}

fn bench_occ(c: &mut Criterion) {
    use pstm_occ::OccManager;
    let mut g = c.benchmark_group("occ");
    g.bench_function("begin_execute_commit_cycle", |b| {
        let world = counter_world(1, i64::MAX / 2).unwrap();
        let r = world.resources[0];
        let mut occ = OccManager::new(world.db.clone(), world.bindings.clone());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let t = TxnId(i);
            occ.begin(t, Timestamp::ZERO).unwrap();
            occ.execute(t, r, ScalarOp::Sub(Value::Int(1)), Timestamp::ZERO).unwrap();
            occ.commit(t, Timestamp::ZERO).unwrap().unwrap();
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_storage,
    bench_lock_manager,
    bench_gtm,
    bench_occ,
    bench_end_to_end
);
criterion_main!(benches);
