//! Static/runtime cross-check for the concurrency analyzer.
//!
//! The analyzer proves lock-order facts *statically*; `pstm_top` observes
//! waiting *at runtime* as waits-for snapshots. This test drives a real
//! contended front-end run and holds the two views against each other:
//!
//! 1. **Dialect** — the static lock-order DOT and the runtime waits-for
//!    DOT parse under one shared grammar, so any consumer of one artifact
//!    (the CI DOT upload, a graphviz pipeline) renders the other.
//! 2. **Acyclicity** — the static graph the analyzer certified is
//!    re-checked by an independent toposort over its rendered edges; and
//!    the runtime waits-for graph drains to empty once every session
//!    commits, which is the observable consequence of the discipline the
//!    analyzer proves (no guard outlives its commit wave, nothing is
//!    held across a flush).

use pstm_bench::profile::{merge_records, profile};
use pstm_check::lockgraph::run_lockgraph;
use pstm_core::gtm::CommitResult;
use pstm_front::{FrontConfig, ShardedFront};
use pstm_obs::{RingHandle, RingSink, Tracer};
use pstm_types::{ScalarOp, Value};
use pstm_workload::counter_world;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

const OBJECTS: usize = 4;
const SHARDS: usize = 2;
const WAITERS: usize = 3;

/// Minimal shared-dialect DOT reader: header, `rankdir=LR;`, two-space
/// indented `;`-terminated statements, nodes before sorted edges.
fn parse_dot(dot: &str) -> (BTreeSet<String>, Vec<(String, String)>) {
    let mut lines = dot.lines();
    let head = lines.next().expect("header line");
    assert!(head.starts_with("digraph ") && head.ends_with(" {"), "bad header: {head}");
    assert_eq!(lines.next(), Some("  rankdir=LR;"));
    let mut nodes = BTreeSet::new();
    let mut edges = Vec::new();
    for line in lines {
        if line == "}" {
            let mut sorted = edges.clone();
            sorted.sort();
            assert_eq!(edges, sorted, "edges emitted sorted");
            for (a, b) in &edges {
                assert!(nodes.contains(a) && nodes.contains(b), "undeclared endpoint {a}->{b}");
            }
            return (nodes, edges);
        }
        let stmt = line
            .strip_prefix("  ")
            .and_then(|s| s.strip_suffix(';'))
            .unwrap_or_else(|| panic!("malformed statement: {line:?}"));
        if let Some((from, to)) = stmt.split_once(" -> ") {
            edges.push((from.to_string(), to.to_string()));
        } else if !stmt.contains('[') {
            nodes.insert(stmt.to_string());
        }
    }
    panic!("unterminated digraph");
}

/// Kahn's algorithm — deliberately not the analyzer's DFS cycle check.
fn is_acyclic(nodes: &BTreeSet<String>, edges: &[(String, String)]) -> bool {
    let mut indeg: BTreeMap<&str, usize> = nodes.iter().map(|n| (n.as_str(), 0)).collect();
    for (_, to) in edges {
        *indeg.get_mut(to.as_str()).unwrap() += 1;
    }
    let mut ready: Vec<&str> = indeg.iter().filter(|(_, d)| **d == 0).map(|(n, _)| *n).collect();
    let mut seen = 0;
    while let Some(n) = ready.pop() {
        seen += 1;
        for (from, to) in edges {
            if from == n {
                let d = indeg.get_mut(to.as_str()).unwrap();
                *d -= 1;
                if *d == 0 {
                    ready.push(to);
                }
            }
        }
    }
    seen == nodes.len()
}

#[test]
fn static_lock_order_and_runtime_waits_for_agree() {
    // --- runtime side: a contended run with per-shard ring tracers ---
    let world = counter_world(OBJECTS, 1_000_000).unwrap();
    let mut handles: Vec<RingHandle> = Vec::new();
    let front = ShardedFront::with_shard_tracers(
        world.db.clone(),
        world.bindings.clone(),
        FrontConfig { shards: SHARDS, ..FrontConfig::default() },
        |_| {
            let ring = RingSink::new(1 << 16);
            handles.push(ring.handle());
            Tracer::with_sink(Box::new(ring))
        },
    );
    let hot = world.resources[0];
    let mut holder = front.session();
    holder.execute(hot, ScalarOp::Assign(Value::Int(1))).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..WAITERS {
            let front = front.clone();
            scope.spawn(move || {
                let mut s = front.session();
                s.execute(hot, ScalarOp::Add(Value::Int(1))).unwrap();
                assert_eq!(s.commit().unwrap(), CommitResult::Committed);
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(holder.commit().unwrap(), CommitResult::Committed);
    });
    front.check_invariants().unwrap();

    let records = merge_records(handles.iter().map(|h| h.snapshot()).collect());
    let p = profile(&records, 3, 4);
    let peak = p.peak.as_ref().expect("the held Assign must show as waiting");
    assert!(peak.edges >= 1);

    // --- static side: the analyzer over this very workspace ---
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();
    let report = run_lockgraph(&root).expect("lockgraph run");
    assert!(report.is_clean(), "workspace not clean:\n{}", report.render());

    // 1. One grammar reads both artifacts.
    let (static_nodes, static_edges) = parse_dot(&report.dot());
    let (runtime_nodes, runtime_edges) = parse_dot(&peak.dot);
    assert!(!static_edges.is_empty() && !runtime_edges.is_empty());
    for n in &runtime_nodes {
        assert!(
            n.starts_with('T') && n[1..].chars().all(|c| c.is_ascii_digit()),
            "runtime nodes are transactions: {n}"
        );
    }

    // 2. Independent acyclicity: the certified lock-order graph really is
    //    a DAG, and the drained waits-for graph really is empty.
    assert!(is_acyclic(&static_nodes, &static_edges), "lock-order cycle slipped through");
    assert!(static_nodes.contains("gtm_shard"), "{static_nodes:?}");
    let last = p.snapshots.last().expect("snapshots requested");
    assert_eq!(last.edges, 0, "all sessions committed; waits-for must drain: {}", last.dot);
    assert!(front.shards_unlocked(), "a shard guard leaked past commit");
}
