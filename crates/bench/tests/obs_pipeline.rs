//! End-to-end observability pipeline: drive a deliberately contended
//! front-end workload with per-shard ring sinks, merge the shard traces
//! the way `pstm_top` does, and check the profile names the known hot
//! object — the acceptance criterion for the contention profiler.

use pstm_bench::profile::{merge_records, profile, render};
use pstm_core::gtm::CommitResult;
use pstm_front::{FrontConfig, ShardedFront};
use pstm_obs::{RingHandle, RingSink, Tracer};
use pstm_types::{OpClass, ScalarOp, Value};
use pstm_workload::counter_world;

const OBJECTS: usize = 8;
const SHARDS: usize = 4;
const WAITERS: usize = 3;

#[test]
fn profile_of_a_hotspot_workload_names_the_hot_object() {
    let world = counter_world(OBJECTS, 1_000_000).unwrap();
    let mut handles: Vec<RingHandle> = Vec::new();
    let front = ShardedFront::with_shard_tracers(
        world.db.clone(),
        world.bindings.clone(),
        FrontConfig { shards: SHARDS, ..FrontConfig::default() },
        |_| {
            let ring = RingSink::new(1 << 16);
            handles.push(ring.handle());
            Tracer::with_sink(Box::new(ring))
        },
    );
    let hot = world.resources[0];

    // The hotspot: one session holds an exclusive Assign on `hot` while
    // three threads pile up behind it; the holder commits after a real
    // delay, so every waiter accumulates blocked time on `hot`.
    let mut holder = front.session();
    holder.execute(hot, ScalarOp::Assign(Value::Int(1))).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..WAITERS {
            let front = front.clone();
            scope.spawn(move || {
                let mut s = front.session();
                s.execute(hot, ScalarOp::Assign(Value::Int(2))).unwrap();
                assert_eq!(s.commit().unwrap(), CommitResult::Committed);
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(holder.commit().unwrap(), CommitResult::Committed);
    });

    // Background traffic on every other object: compatible subtractions,
    // no blocking — the profiler must not rank these above the hotspot.
    for k in 1..OBJECTS {
        let mut s = front.session();
        s.execute(world.resources[k], ScalarOp::Sub(Value::Int(1))).unwrap();
        assert_eq!(s.commit().unwrap(), CommitResult::Committed);
    }
    front.check_invariants().unwrap();

    // The pstm_top pipeline, minus the files: snapshot each shard's ring,
    // merge into one timeline, profile.
    let records = merge_records(handles.iter().map(|h| h.snapshot()).collect());
    let p = profile(&records, 3, 4);

    assert_eq!(p.hot_source, "blocked spans");
    assert_eq!(p.hot[0].resource, hot, "the contended object must rank first");
    assert!(p.hot[0].us > 0);
    if let Some(runner_up) = p.hot.get(1) {
        assert!(p.hot[0].us >= runner_up.us);
    }

    let blocked = p.phases.iter().find(|r| r.phase == "blocked").expect("waiters blocked");
    assert_eq!(blocked.count, WAITERS as u64);
    assert!(p.phases.iter().any(|r| r.phase == "session"));

    // Every session finished; the Assign class saw the contention but
    // nothing aborted.
    let sessions = (1 + WAITERS + OBJECTS - 1) as u64;
    assert_eq!(p.registry.counter(pstm_obs::Ctr::Committed), sessions);
    let assign = p.classes.iter().find(|c| c.class == OpClass::UpdateAssign).unwrap();
    assert_eq!((assign.committed, assign.aborted), (1 + WAITERS as u64, 0));

    // Someone waited, so the waits-for graph had an edge at its peak.
    let peak = p.peak.as_ref().expect("contention must show in waits-for");
    assert!(peak.edges >= 1);

    // The rendered report names the hot object for the operator.
    let report = render(&p);
    assert!(report.contains(&hot.to_string()), "report must name the hot object:\n{report}");
    assert!(report.contains("blocked"));
}

/// The merged profile is reproducible: profiling the same merged records
/// twice renders byte-identical reports (determinism of the pipeline,
/// not of the threaded run that produced the trace).
#[test]
fn profiling_is_deterministic_over_a_fixed_trace() {
    let world = counter_world(2, 1_000).unwrap();
    let mut handles: Vec<RingHandle> = Vec::new();
    let front = ShardedFront::with_shard_tracers(
        world.db.clone(),
        world.bindings.clone(),
        FrontConfig { shards: 2, ..FrontConfig::default() },
        |_| {
            let ring = RingSink::new(1 << 12);
            handles.push(ring.handle());
            Tracer::with_sink(Box::new(ring))
        },
    );
    for k in 0..4 {
        let mut s = front.session();
        s.execute(world.resources[k % 2], ScalarOp::Sub(Value::Int(1))).unwrap();
        s.commit().unwrap();
    }
    let records = merge_records(handles.iter().map(|h| h.snapshot()).collect());
    let a = render(&profile(&records, 5, 3));
    let b = render(&profile(&records, 5, 3));
    assert_eq!(a, b);
}
