//! Satellite of the obs PR: `GtmStats` is a pure projection of the event
//! stream, so the counters derived by replaying a captured trace must
//! equal the counters the live run reports — on arbitrary workloads,
//! including ones full of rejected calls and policy denials.

use proptest::prelude::*;
use pstm_core::gtm::{Gtm, GtmConfig, GtmStats};
use pstm_core::policy::{AdmissionPolicy, StarvationPolicy};
use pstm_obs::{MetricsRegistry, RingSink, Tracer};
use pstm_storage::{BindingRegistry, ColumnDef, Constraint, Database, Row, TableSchema};
use pstm_types::{MemberId, ResourceId, ScalarOp, Timestamp, TxnId, Value, ValueKind};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum FuzzEvent {
    Begin(u64),
    Execute(u64, usize, FuzzOp),
    Commit(u64),
    Abort(u64),
    Sleep(u64),
    Awake(u64),
    Tick,
}

#[derive(Debug, Clone)]
enum FuzzOp {
    Read,
    Assign(i64),
    Add(i64),
    Sub(i64),
}

impl FuzzOp {
    fn to_scalar(&self) -> ScalarOp {
        match self {
            FuzzOp::Read => ScalarOp::Read,
            FuzzOp::Assign(c) => ScalarOp::Assign(Value::Int(*c)),
            FuzzOp::Add(c) => ScalarOp::Add(Value::Int(*c)),
            FuzzOp::Sub(c) => ScalarOp::Sub(Value::Int(*c)),
        }
    }
}

fn arb_event() -> impl Strategy<Value = FuzzEvent> {
    let op = prop_oneof![
        Just(FuzzOp::Read),
        (0i64..50).prop_map(FuzzOp::Assign),
        (1i64..5).prop_map(FuzzOp::Add),
        (1i64..5).prop_map(FuzzOp::Sub),
    ];
    prop_oneof![
        (1u64..8).prop_map(FuzzEvent::Begin),
        (1u64..8, 0usize..3, op).prop_map(|(t, r, o)| FuzzEvent::Execute(t, r, o)),
        (1u64..8).prop_map(FuzzEvent::Commit),
        (1u64..8).prop_map(FuzzEvent::Abort),
        (1u64..8).prop_map(FuzzEvent::Sleep),
        (1u64..8).prop_map(FuzzEvent::Awake),
        Just(FuzzEvent::Tick),
    ]
}

fn world(config: GtmConfig) -> (Gtm, Vec<ResourceId>) {
    let db = Arc::new(Database::new());
    let schema = TableSchema::new(
        "Obj",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("v", ValueKind::Int)],
    )
    .unwrap();
    let table = db.create_table(schema, vec![Constraint::non_negative("v>=0", 1)]).unwrap();
    let boot = TxnId(1 << 40);
    db.begin(boot).unwrap();
    let mut bindings = BindingRegistry::new();
    let mut rs = Vec::new();
    for i in 0..3 {
        let row = db.insert(boot, table, Row::new(vec![Value::Int(i), Value::Int(30)])).unwrap();
        let o = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
        rs.push(ResourceId::atomic(o));
    }
    db.commit(boot).unwrap();
    (Gtm::new(db, bindings, config), rs)
}

fn replay_equals_live(config: GtmConfig, events: &[FuzzEvent]) -> Result<(), TestCaseError> {
    let (gtm, rs) = world(config);
    let ring = RingSink::new(1 << 14);
    let handle = ring.handle();
    let mut gtm = gtm.with_tracer(Tracer::with_sink(Box::new(ring)));

    let mut clock = 0u64;
    for ev in events {
        clock += 100_000; // 0.1 s per event
        let now = Timestamp(clock);
        match ev {
            FuzzEvent::Begin(t) => {
                let _ = gtm.begin(TxnId(*t), now);
            }
            FuzzEvent::Execute(t, r, op) => {
                let _ = gtm.execute(TxnId(*t), rs[*r], op.to_scalar(), now);
            }
            FuzzEvent::Commit(t) => {
                let _ = gtm.commit(TxnId(*t), now);
            }
            FuzzEvent::Abort(t) => {
                let _ = gtm.abort(TxnId(*t), now);
            }
            FuzzEvent::Sleep(t) => {
                let _ = gtm.sleep(TxnId(*t), now);
            }
            FuzzEvent::Awake(t) => {
                let _ = gtm.awake(TxnId(*t), now);
            }
            FuzzEvent::Tick => {
                let _ = gtm.tick(now);
            }
        }
    }

    prop_assert_eq!(handle.dropped(), 0, "ring must be large enough to hold the whole trace");
    let records = handle.snapshot();
    let derived = GtmStats::from_registry(&MetricsRegistry::from_records(&records));
    let live = gtm.stats();
    prop_assert_eq!(derived, live);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Default config: shared grants, reconciliation, deadlock ticks.
    #[test]
    fn prop_trace_derived_stats_equal_live_stats(
        events in prop::collection::vec(arb_event(), 1..120)
    ) {
        replay_equals_live(GtmConfig::default(), &events)?;
    }

    /// Every §VII policy armed: starvation + admission denials, wait
    /// timeouts, and constraint aborts (tight initial counter) all flow
    /// through the same event stream.
    #[test]
    fn prop_trace_derived_stats_equal_live_stats_with_policies(
        events in prop::collection::vec(arb_event(), 1..100)
    ) {
        let config = GtmConfig {
            starvation: Some(StarvationPolicy { deny_threshold: 1 }),
            admission: Some(AdmissionPolicy::per_unit()),
            wait_timeout: Some(pstm_types::Duration::from_secs_f64(2.0)),
            sst_retries: 1,
            ..GtmConfig::default()
        };
        replay_equals_live(config, &events)?;
    }
}
