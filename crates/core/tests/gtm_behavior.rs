//! Behavioural tests of the GTM against the paper's Algorithms 1–11,
//! Table II, and the §VII extensions.

use pstm_core::gtm::{AwakeResult, CommitResult, Gtm, GtmConfig};
use pstm_core::policy::{AdmissionPolicy, StarvationPolicy};
use pstm_core::TxnState;
use pstm_storage::{BindingRegistry, ColumnDef, Constraint, Database, Row, TableSchema};
use pstm_types::{
    AbortReason, CompatMatrix, ExecOutcome, MemberId, PstmError, ResourceId, ScalarOp, Timestamp,
    TxnId, Value, ValueKind,
};
use std::sync::Arc;

fn t(i: u64) -> TxnId {
    TxnId(i)
}

fn ts(secs: f64) -> Timestamp {
    Timestamp::from_secs_f64(secs)
}

const T0: Timestamp = Timestamp(0);

/// `n` atomic objects with value 100 and a `>= 0` CHECK, plus one
/// two-member object (quantity, price) for member-granularity tests.
fn setup(n: usize, config: GtmConfig) -> (Gtm, Vec<ResourceId>) {
    let db = Arc::new(Database::new());
    let schema = TableSchema::new(
        "Flight",
        vec![
            ColumnDef::new("id", ValueKind::Int),
            ColumnDef::new("free", ValueKind::Int),
            ColumnDef::new("price", ValueKind::Float),
        ],
    )
    .unwrap();
    let table = db.create_table(schema, vec![Constraint::non_negative("free >= 0", 1)]).unwrap();
    let boot = TxnId(1 << 40);
    db.begin(boot).unwrap();
    let mut bindings = BindingRegistry::new();
    let mut resources = Vec::new();
    for i in 0..n {
        let row = db
            .insert(
                boot,
                table,
                Row::new(vec![Value::Int(i as i64), Value::Int(100), Value::Float(50.0)]),
            )
            .unwrap();
        let obj = bindings.bind_object(table, row, &[(MemberId(0), 1), (MemberId(1), 2)]).unwrap();
        resources.push(ResourceId::new(obj, MemberId(0)));
    }
    db.commit(boot).unwrap();
    (Gtm::new(db, bindings, config), resources)
}

fn price_member(r: ResourceId) -> ResourceId {
    ResourceId::new(r.object, MemberId(1))
}

fn completed(out: &ExecOutcome) -> &Value {
    match out {
        ExecOutcome::Completed(v) => v,
        other => panic!("expected Completed, got {other:?}"),
    }
}

#[test]
fn table_two_reconciliation_trace() {
    // The paper's Table II, executed end to end through the GTM.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    let x = res[0];
    gtm.begin(t(1), T0).unwrap(); // A
    gtm.begin(t(2), T0).unwrap(); // B

    // A: read X (class addsub via later strengthening is avoided — the
    // paper folds read-for-update into the update class; we issue the
    // additive ops directly).
    let (o, _) = gtm.execute(t(1), x, ScalarOp::Add(Value::Int(1)), T0).unwrap();
    assert_eq!(completed(&o), &Value::Int(101));
    let (o, _) = gtm.execute(t(2), x, ScalarOp::Add(Value::Int(2)), T0).unwrap();
    assert_eq!(completed(&o), &Value::Int(102), "B shares the member concurrently");
    let (o, _) = gtm.execute(t(1), x, ScalarOp::Add(Value::Int(3)), T0).unwrap();
    assert_eq!(completed(&o), &Value::Int(104), "A_temp accumulates privately");

    // A commits: X_new^A = 104 + 100 - 100 = 104.
    let (r, _) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    let b = gtm.bindings().resolve(x).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(104));

    // B commits: X_new^B = 102 + 104 - 100 = 106.
    let (r, _) = gtm.commit(t(2), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(106));

    gtm.verify_serializable().unwrap();
    assert_eq!(gtm.stats().shared_grants, 1);
    assert_eq!(gtm.stats().reconciliations, 2);
}

#[test]
fn incompatible_classes_queue() {
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    // An assignment conflicts with the pending additive holder.
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(0)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    assert_eq!(gtm.state(t(2)), Some(TxnState::Waiting));

    // t1's commit unlocks the resource and grants t2's assignment.
    let (r, fx) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    assert_eq!(fx.resumed, vec![(t(2), Value::Int(0))]);
    assert_eq!(gtm.state(t(2)), Some(TxnState::Active));
    let (r, _) = gtm.commit(t(2), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    gtm.verify_serializable().unwrap();
}

#[test]
fn reads_share_with_updates() {
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(5)), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Read, T0).unwrap();
    // The reader sees the committed value, not t1's virtual copy.
    assert_eq!(completed(&o), &Value::Int(100));
    gtm.commit(t(2), T0).unwrap();
    gtm.commit(t(1), T0).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn different_members_never_conflict() {
    // The "logical dependence" relaxation: quantity and price of the same
    // object are distinct members, hence compatible.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    let (o, _) =
        gtm.execute(t(2), price_member(res[0]), ScalarOp::Assign(Value::Float(42.0)), T0).unwrap();
    assert!(matches!(o, ExecOutcome::Completed(_)), "other member, no conflict");
    gtm.commit(t(1), T0).unwrap();
    gtm.commit(t(2), T0).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn read_then_book_strengthening() {
    // §II: select free tickets, then book one.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    let (o, _) = gtm.execute(t(1), res[0], ScalarOp::Read, T0).unwrap();
    assert_eq!(completed(&o), &Value::Int(100));
    let (o, _) = gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert_eq!(completed(&o), &Value::Int(99));
    let (r, _) = gtm.commit(t(1), T0).unwrap();
    assert_eq!(r, CommitResult::Committed);
    gtm.verify_serializable().unwrap();
}

#[test]
fn two_readers_both_strengthen_without_deadlock() {
    // Under 2PL this is the classic upgrade deadlock. Under the GTM the
    // additive strengthenings are mutually compatible: both proceed.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Read, T0).unwrap();
    gtm.execute(t(2), res[0], ScalarOp::Read, T0).unwrap();
    let (o1, _) = gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    let (o2, _) = gtm.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert!(matches!(o1, ExecOutcome::Completed(_)));
    assert!(matches!(o2, ExecOutcome::Completed(_)));
    gtm.commit(t(1), T0).unwrap();
    gtm.commit(t(2), T0).unwrap();
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(98));
    gtm.verify_serializable().unwrap();
    assert_eq!(gtm.stats().aborted_deadlock, 0);
}

#[test]
fn sleeping_holder_is_bypassed_and_aborted_on_awake() {
    // The centrepiece: a disconnected transaction does not block
    // incompatible work; it pays at awake time.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.sleep(t(1), ts(1.0)).unwrap();

    // The incompatible assignment bypasses the sleeper (Algorithm 2
    // excludes X_sleeping from the conflict set).
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(500)), ts(2.0)).unwrap();
    assert!(matches!(o, ExecOutcome::Completed(_)));
    assert_eq!(gtm.stats().bypassed_sleepers, 1);
    let (r, _) = gtm.commit(t(2), ts(3.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);

    // The sleeper wakes to find an incompatible commit with
    // X_tc > A_t_sleep: aborted (Algorithm 9, third branch).
    let (aw, _) = gtm.awake(t(1), ts(4.0)).unwrap();
    assert_eq!(aw, AwakeResult::Aborted);
    assert_eq!(gtm.state(t(1)), Some(TxnState::Aborted));
    assert_eq!(gtm.stats().aborted_sleep_conflict, 1);
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(500));
    gtm.verify_serializable().unwrap();
}

#[test]
fn sleeper_with_only_compatible_activity_resumes() {
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.sleep(t(1), ts(1.0)).unwrap();

    // A *compatible* additive transaction commits during the sleep.
    gtm.execute(t(2), res[0], ScalarOp::Sub(Value::Int(2)), ts(2.0)).unwrap();
    gtm.commit(t(2), ts(3.0)).unwrap();

    let (aw, _) = gtm.awake(t(1), ts(4.0)).unwrap();
    assert_eq!(aw, AwakeResult::Resumed(None));
    assert_eq!(gtm.state(t(1)), Some(TxnState::Active));
    let (r, _) = gtm.commit(t(1), ts(5.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    // 100 - 2 (t2) - 1 (t1, reconciled) = 97.
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(97));
    gtm.verify_serializable().unwrap();
}

#[test]
fn sleeping_waiter_granted_on_awake_with_fresh_snapshot() {
    // Algorithm 9, first branch: A ∈ X_waiting and no conflicts →
    // waiting → pending with X_read = A_temp = X_permanent.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(50)), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    gtm.sleep(t(2), ts(1.0)).unwrap();

    // The blocker commits; the sleeping waiter must NOT be promoted
    // (Algorithm 11 skips X_sleeping).
    let (_, fx) = gtm.commit(t(1), ts(2.0)).unwrap();
    assert!(fx.resumed.is_empty(), "sleeping waiters stay queued");

    // Wait: the assignment committed at ts(2.0) > t_sleep = ts(1.0) and
    // assign conflicts with addsub — so by Algorithm 9 the waiter aborts.
    let (aw, _) = gtm.awake(t(2), ts(3.0)).unwrap();
    assert_eq!(aw, AwakeResult::Aborted);

    // Variant where the sleep began *after* the incompatible commit: the
    // waiter survives and is granted on awake against the fresh value.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(50)), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    let (_, fx) = gtm.commit(t(1), ts(1.0)).unwrap();
    // Not sleeping: promoted straight away against X_permanent = 50.
    assert_eq!(fx.resumed, vec![(t(2), Value::Int(49))]);
    gtm.commit(t(2), ts(2.0)).unwrap();
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(49));
    gtm.verify_serializable().unwrap();
}

#[test]
fn sleep_unblocks_queued_incompatible_waiter() {
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(7)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    // t1 disconnects: its grant stops blocking; t2 is promoted.
    let fx = gtm.sleep(t(1), ts(1.0)).unwrap();
    assert_eq!(fx.resumed, vec![(t(2), Value::Int(7))]);
    gtm.commit(t(2), ts(2.0)).unwrap();
    // t1 wakes into a conflict and dies.
    let (aw, _) = gtm.awake(t(1), ts(3.0)).unwrap();
    assert_eq!(aw, AwakeResult::Aborted);
    gtm.verify_serializable().unwrap();
}

#[test]
fn abort_discards_virtual_work() {
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(40)), T0).unwrap();
    let fx = gtm.abort(t(1), T0).unwrap();
    assert_eq!(fx.aborted, vec![(t(1), AbortReason::User)]);
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(100));
    assert_eq!(gtm.database().stats().aborts, 0, "nothing ever reached the engine");
}

#[test]
fn constraint_violation_at_sst_aborts_globally() {
    // Two concurrent unit bookings on a 1-seat flight: both reconcile,
    // the second SST violates free >= 0 and the transaction aborts —
    // the §VII problem.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    // Drain the flight to 1 seat first.
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(99)), T0).unwrap();
    gtm.commit(t(1), T0).unwrap();

    gtm.begin(t(2), T0).unwrap();
    gtm.begin(t(3), T0).unwrap();
    gtm.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.execute(t(3), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    let (r2, _) = gtm.commit(t(2), ts(1.0)).unwrap();
    assert_eq!(r2, CommitResult::Committed);
    let (r3, _) = gtm.commit(t(3), ts(2.0)).unwrap();
    assert_eq!(r3, CommitResult::Aborted(AbortReason::Constraint));
    assert_eq!(gtm.stats().aborted_constraint, 1);
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(0));
    gtm.verify_serializable().unwrap();
}

#[test]
fn admission_control_prevents_constraint_aborts() {
    // Same scenario with the §VII admission extension: the second booking
    // waits instead of aborting at commit.
    let config = GtmConfig { admission: Some(AdmissionPolicy::per_unit()), ..GtmConfig::default() };
    let (mut gtm, res) = setup(1, config);
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(99)), T0).unwrap();
    gtm.commit(t(1), T0).unwrap();

    gtm.begin(t(2), T0).unwrap();
    gtm.begin(t(3), T0).unwrap();
    let (o2, _) = gtm.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert!(matches!(o2, ExecOutcome::Completed(_)));
    // Value is 1, one additive holder admitted — the next must wait.
    let (o3, _) = gtm.execute(t(3), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert_eq!(o3, ExecOutcome::Waiting);
    assert_eq!(gtm.stats().admission_denials, 1);

    let (r2, fx) = gtm.commit(t(2), ts(1.0)).unwrap();
    assert_eq!(r2, CommitResult::Committed);
    // After t2's commit the value is 0: t3 stays queued (admission still
    // denies), it does NOT abort.
    assert!(fx.resumed.is_empty());
    assert_eq!(gtm.state(t(3)), Some(TxnState::Waiting));
    assert_eq!(gtm.stats().aborted_constraint, 0);

    // An admin restock unblocks it.
    gtm.begin(t(4), ts(2.0)).unwrap();
    gtm.execute(t(4), res[0], ScalarOp::Assign(Value::Int(10)), ts(2.0)).unwrap();
    let (_, fx) = gtm.commit(t(4), ts(3.0)).unwrap();
    assert_eq!(fx.resumed, vec![(t(3), Value::Int(9))]);
    gtm.commit(t(3), ts(4.0)).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn starvation_policy_denies_compatible_stream() {
    let config = GtmConfig {
        starvation: Some(StarvationPolicy { deny_threshold: 1 }),
        ..GtmConfig::default()
    };
    let (mut gtm, res) = setup(1, config);
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.begin(t(3), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    // t2's assignment queues (incompatible with t1).
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(5)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    // Without the policy t3's subtraction would join t1. With it, the
    // queued incompatible waiter blocks new compatible grants.
    let (o, _) = gtm.execute(t(3), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    assert_eq!(gtm.stats().starvation_denials, 1);

    // Drain: t1 commits → t2 (front, incompatible with nobody now) gets
    // in; t3 remains behind t2.
    let (_, fx) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(fx.resumed.len(), 1);
    assert_eq!(fx.resumed[0].0, t(2));
    let (_, fx) = gtm.commit(t(2), ts(2.0)).unwrap();
    assert_eq!(fx.resumed.len(), 1);
    assert_eq!(fx.resumed[0].0, t(3));
    gtm.commit(t(3), ts(3.0)).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn read_write_only_matrix_degenerates_to_locking() {
    // Ablation configuration: no semantic sharing.
    let config = GtmConfig { compat: CompatMatrix::read_write_only(), ..GtmConfig::default() };
    let (mut gtm, res) = setup(1, config);
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting, "no additive sharing under the strict matrix");
    let (_, fx) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(fx.resumed.len(), 1);
    gtm.commit(t(2), ts(2.0)).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn well_formedness_guards() {
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    assert!(gtm.begin(t(1), T0).is_err(), "double begin");
    assert!(gtm.awake(t(1), T0).is_err(), "awake while active");
    assert!(gtm.commit(t(99), T0).is_err(), "unknown txn");

    // Mixing incompatible mutation classes on one member is rejected.
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert!(matches!(
        gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(1)), T0).unwrap_err(),
        PstmError::InvalidState { .. }
    ));
    // Reads under a held mutation class are fine (and see the virtual
    // copy).
    let (o, _) = gtm.execute(t(1), res[0], ScalarOp::Read, T0).unwrap();
    assert_eq!(completed(&o), &Value::Int(99));

    // No events after commit.
    gtm.commit(t(1), T0).unwrap();
    assert!(gtm.execute(t(1), res[0], ScalarOp::Read, T0).is_err());
    assert!(gtm.commit(t(1), T0).is_err());
    assert!(gtm.sleep(t(1), T0).is_err());
    assert!(gtm.abort(t(1), T0).is_err());
}

#[test]
fn waiting_txn_cannot_issue_more_invocations() {
    let (mut gtm, res) = setup(2, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(1)), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(2)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    assert!(gtm.execute(t(2), res[1], ScalarOp::Read, T0).is_err());
    // And cannot commit while waiting (§IV constraint iii).
    assert!(gtm.commit(t(2), T0).is_err());
}

#[test]
fn cross_resource_deadlock_detected() {
    // Two assignments each holding one resource, each wanting the other's.
    let (mut gtm, res) = setup(2, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(1)), T0).unwrap();
    gtm.execute(t(2), res[1], ScalarOp::Assign(Value::Int(2)), T0).unwrap();
    let (o, _) = gtm.execute(t(1), res[1], ScalarOp::Assign(Value::Int(3)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    // t2's request closes the cycle; the youngest (t2) dies and t1's
    // stashed op completes.
    let (o, fx) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(4)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Aborted(AbortReason::Deadlock));
    assert_eq!(fx.resumed, vec![(t(1), Value::Int(3))]);
    assert_eq!(gtm.stats().aborted_deadlock, 1);
    gtm.commit(t(1), T0).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn multi_resource_commit_is_atomic_in_one_sst() {
    let (mut gtm, res) = setup(3, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.execute(t(1), res[1], ScalarOp::Sub(Value::Int(2)), T0).unwrap();
    gtm.execute(t(1), res[2], ScalarOp::Sub(Value::Int(3)), T0).unwrap();
    let commits_before = gtm.database().stats().commits;
    gtm.commit(t(1), T0).unwrap();
    assert_eq!(gtm.database().stats().commits, commits_before + 1, "one engine txn");
    for (i, r) in res.iter().enumerate() {
        let b = gtm.bindings().resolve(*r).unwrap();
        assert_eq!(
            gtm.database().get_col(b.table, b.row, b.column).unwrap(),
            Value::Int(100 - (i as i64 + 1))
        );
    }
    gtm.verify_serializable().unwrap();
    assert_eq!(gtm.stats().ssts_executed, 1);
}

#[test]
fn read_only_transaction_commits_without_sst() {
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Read, T0).unwrap();
    let (r, _) = gtm.commit(t(1), T0).unwrap();
    assert_eq!(r, CommitResult::Committed);
    assert_eq!(gtm.stats().ssts_executed, 0);
    assert_eq!(gtm.stats().reconciliations, 0);
    gtm.verify_serializable().unwrap();
}

#[test]
fn wait_timeout_aborts_stale_waiters() {
    let config = GtmConfig {
        wait_timeout: Some(pstm_types::Duration::from_secs_f64(5.0)),
        ..GtmConfig::default()
    };
    let (mut gtm, res) = setup(1, config);
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(1)), T0).unwrap();
    gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(2)), T0).unwrap();
    assert!(gtm.tick(ts(3.0)).unwrap().is_empty());
    let fx = gtm.tick(ts(6.0)).unwrap();
    assert_eq!(fx.aborted, vec![(t(2), AbortReason::LockTimeout)]);
    assert_eq!(gtm.stats().aborted_wait_timeout, 1);
}

#[test]
fn many_concurrent_bookers_reconcile_exactly() {
    // 30 unit bookings interleaved, committed in reverse order: the final
    // value must be exactly 100 - 30 regardless.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    for i in 1..=30u64 {
        gtm.begin(t(i), T0).unwrap();
        let (o, _) = gtm.execute(t(i), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert!(matches!(o, ExecOutcome::Completed(_)));
    }
    for i in (1..=30u64).rev() {
        let (r, _) = gtm.commit(t(i), ts(i as f64)).unwrap();
        assert_eq!(r, CommitResult::Committed);
    }
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(70));
    gtm.verify_serializable().unwrap();
    assert_eq!(gtm.stats().shared_grants, 29);
}

#[test]
fn multiplicative_class_shares_and_reconciles() {
    let (mut gtm, res) = setup(1, GtmConfig::default());
    let price = price_member(res[0]); // Float 50.0
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), price, ScalarOp::Mul(Value::Float(2.0)), T0).unwrap();
    let (o, _) = gtm.execute(t(2), price, ScalarOp::Mul(Value::Float(1.5)), T0).unwrap();
    assert!(matches!(o, ExecOutcome::Completed(_)));
    gtm.commit(t(1), T0).unwrap();
    gtm.commit(t(2), T0).unwrap();
    let b = gtm.bindings().resolve(price).unwrap();
    let v = gtm.database().get_col(b.table, b.row, b.column).unwrap().as_f64().unwrap();
    assert!((v - 150.0).abs() < 1e-9, "50 · 2 · 1.5 = 150, got {v}");
    gtm.verify_serializable().unwrap();
}

#[test]
fn logical_dependence_makes_members_conflict() {
    // Declare quantity (member 0) and price (member 1) of object 0
    // logically dependent: an assignment to price now conflicts with an
    // additive update of quantity — the paper's §IV example.
    let (gtm_plain, res) = setup(1, GtmConfig::default());
    drop(gtm_plain);
    let (gtm, _) = setup(1, GtmConfig::default());
    let mut dep = pstm_core::DependenceMap::new();
    dep.declare_dependent(&[res[0], price_member(res[0])]).unwrap();
    let mut gtm = gtm.with_dependence(dep);

    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    // Without the declaration this completes (different members); with it
    // the assignment must queue.
    let (o, _) =
        gtm.execute(t(2), price_member(res[0]), ScalarOp::Assign(Value::Float(9.0)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting, "dependent members conflict");

    let (_, fx) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(fx.resumed.len(), 1, "release of quantity unblocks the price assign");
    gtm.commit(t(2), ts(2.0)).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn logical_dependence_kills_sleeper_across_members() {
    let (gtm, res) = setup(1, GtmConfig::default());
    let mut dep = pstm_core::DependenceMap::new();
    dep.declare_dependent(&[res[0], price_member(res[0])]).unwrap();
    let mut gtm = gtm.with_dependence(dep);

    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.sleep(t(1), ts(1.0)).unwrap();

    // An assignment to the *dependent* price member bypasses the sleeper
    // and commits...
    gtm.begin(t(2), ts(2.0)).unwrap();
    let (o, _) = gtm
        .execute(t(2), price_member(res[0]), ScalarOp::Assign(Value::Float(1.0)), ts(2.0))
        .unwrap();
    assert!(matches!(o, ExecOutcome::Completed(_)));
    gtm.commit(t(2), ts(3.0)).unwrap();

    // ... so the sleeper is aborted on awakening, even though its own
    // member was never touched.
    let (aw, _) = gtm.awake(t(1), ts(4.0)).unwrap();
    assert_eq!(aw, AwakeResult::Aborted);
    gtm.verify_serializable().unwrap();
}

#[test]
fn independent_members_still_share_without_declaration() {
    // Control: the same schedule with no dependence map commits both.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    let (o, _) =
        gtm.execute(t(2), price_member(res[0]), ScalarOp::Assign(Value::Float(9.0)), T0).unwrap();
    assert!(matches!(o, ExecOutcome::Completed(_)));
    gtm.commit(t(1), ts(1.0)).unwrap();
    gtm.commit(t(2), ts(2.0)).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn sst_transient_failure_is_retried() {
    // §VII open problem: SST failure recovery. One injected transient
    // fault, one retry allowed — the commit succeeds on the second
    // attempt.
    let config = GtmConfig { sst_retries: 2, ..GtmConfig::default() };
    let (mut gtm, res) = setup(1, config);
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.database().inject_write_set_faults(1);
    let (r, _) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    assert_eq!(gtm.stats().sst_retries, 1);
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(99));
    gtm.verify_serializable().unwrap();
}

#[test]
fn sst_persistent_failure_aborts_with_clean_state() {
    // More faults than retries: the transaction aborts with SstFailure,
    // the database is untouched, and waiters behind it are released.
    let config = GtmConfig { sst_retries: 1, ..GtmConfig::default() };
    let (mut gtm, res) = setup(1, config);
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(7)), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(8)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);

    gtm.database().inject_write_set_faults(10);
    let (r, fx) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Aborted(AbortReason::SstFailure));
    assert_eq!(gtm.stats().sst_retries, 1);
    assert_eq!(gtm.stats().aborted_sst_failure, 1);
    assert_eq!(gtm.state(t(1)), Some(TxnState::Aborted));
    // The waiter got the resource despite the failed committer.
    assert_eq!(fx.resumed.len(), 1);
    assert_eq!(fx.resumed[0].0, t(2));
    // Database untouched by the failed SST.
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(100));
    // Faults remain injected, so end t2's schedule with a user abort.
    gtm.abort(t(2), ts(2.0)).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn paper_default_sst_failure_is_immediately_fatal() {
    // sst_retries = 0 reproduces the paper's assumption: any SST failure
    // aborts the transaction without retry.
    let (mut gtm, res) = setup(1, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.database().inject_write_set_faults(1);
    let (r, _) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Aborted(AbortReason::SstFailure));
    assert_eq!(gtm.stats().sst_retries, 0);
}

#[test]
fn admission_never_denies_restocking_additions() {
    // Review regression: a sold-out resource (value 0) must not deny the
    // addition that would replenish it — only decrementing ops are
    // value-bounded.
    let config = GtmConfig { admission: Some(AdmissionPolicy::per_unit()), ..GtmConfig::default() };
    let (mut gtm, res) = setup(1, config);
    // Drain to zero.
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(100)), T0).unwrap();
    gtm.commit(t(1), T0).unwrap();

    // A restock addition on the empty resource is admitted immediately.
    gtm.begin(t(2), ts(1.0)).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Add(Value::Int(50)), ts(1.0)).unwrap();
    assert!(matches!(o, ExecOutcome::Completed(_)), "restock must not be denied: {o:?}");
    gtm.commit(t(2), ts(2.0)).unwrap();
    let b = gtm.bindings().resolve(res[0]).unwrap();
    assert_eq!(gtm.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(50));
    // A subtraction is again value-bounded (50 admits up to 50 holders).
    gtm.begin(t(3), ts(3.0)).unwrap();
    let (o, _) = gtm.execute(t(3), res[0], ScalarOp::Sub(Value::Int(1)), ts(3.0)).unwrap();
    assert!(matches!(o, ExecOutcome::Completed(_)));
    gtm.commit(t(3), ts(4.0)).unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn reserved_id_space_rejected_at_begin() {
    let (mut gtm, _) = setup(1, GtmConfig::default());
    assert!(gtm.begin(TxnId(1 << 48), T0).is_err());
    assert!(gtm.begin(TxnId(u64::MAX), T0).is_err());
    gtm.begin(TxnId((1 << 48) - 1), T0).unwrap();
}

#[test]
fn next_wake_deadline_tracks_oldest_waiter() {
    // The reactor front-end schedules its shard-tick timer off this
    // deadline instead of polling; it must track the *oldest* queued
    // waiter and clear once the queue drains.
    let config = GtmConfig {
        wait_timeout: Some(pstm_types::Duration::from_secs_f64(5.0)),
        ..GtmConfig::default()
    };
    let (mut gtm, res) = setup(1, config);
    assert_eq!(gtm.next_wake_deadline(), None, "no waiters, no deadline");
    assert!(!gtm.has_waiters());

    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.begin(t(3), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(1)), T0).unwrap();
    gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(2)), ts(1.0)).unwrap();
    gtm.execute(t(3), res[0], ScalarOp::Assign(Value::Int(3)), ts(2.0)).unwrap();
    assert!(gtm.has_waiters());
    // Two waiters queued at t=1s and t=2s under a 5s timeout: the next
    // scheduled wake belongs to the older one.
    assert_eq!(gtm.next_wake_deadline(), Some(ts(6.0)));

    // The older waiter expires; the deadline advances to the younger.
    let fx = gtm.tick(ts(6.0)).unwrap();
    assert_eq!(fx.aborted, vec![(t(2), AbortReason::LockTimeout)]);
    assert_eq!(gtm.next_wake_deadline(), Some(ts(7.0)));

    // The holder commits, the survivor is promoted: queue empty again.
    gtm.commit(t(1), ts(6.5)).unwrap();
    assert!(!gtm.has_waiters());
    assert_eq!(gtm.next_wake_deadline(), None);
}

#[test]
fn next_wake_deadline_none_without_timeout() {
    // With timeouts disabled a queued waiter has no deadline — the
    // event-driven caller still ticks on its coarse cadence for deadlock
    // detection, but nothing here forces a wakeup.
    let config = GtmConfig { wait_timeout: None, ..GtmConfig::default() };
    let (mut gtm, res) = setup(1, config);
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(1)), T0).unwrap();
    gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(2)), T0).unwrap();
    assert!(gtm.has_waiters());
    assert_eq!(gtm.next_wake_deadline(), None);
}
