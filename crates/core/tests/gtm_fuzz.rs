//! State-machine fuzzing: arbitrary event sequences thrown at the GTM.
//!
//! Every event either succeeds or returns a typed error — it must never
//! panic, never corrupt the cross-structure bookkeeping
//! ([`Gtm::check_invariants`] runs after every event), and whatever
//! commits must remain final-state serializable.

use proptest::prelude::*;
use pstm_core::gtm::{Gtm, GtmConfig};
use pstm_core::policy::{AdmissionPolicy, StarvationPolicy};
use pstm_storage::{BindingRegistry, ColumnDef, Constraint, Database, Row, TableSchema};
use pstm_types::{MemberId, ResourceId, ScalarOp, Timestamp, TxnId, Value, ValueKind};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum FuzzEvent {
    Begin(u64),
    Execute(u64, usize, FuzzOp),
    Commit(u64),
    Abort(u64),
    Sleep(u64),
    Awake(u64),
    Tick,
}

#[derive(Debug, Clone)]
enum FuzzOp {
    Read,
    Assign(i64),
    Add(i64),
    Sub(i64),
}

impl FuzzOp {
    fn to_scalar(&self) -> ScalarOp {
        match self {
            FuzzOp::Read => ScalarOp::Read,
            FuzzOp::Assign(c) => ScalarOp::Assign(Value::Int(*c)),
            FuzzOp::Add(c) => ScalarOp::Add(Value::Int(*c)),
            FuzzOp::Sub(c) => ScalarOp::Sub(Value::Int(*c)),
        }
    }
}

fn arb_event() -> impl Strategy<Value = FuzzEvent> {
    let op = prop_oneof![
        Just(FuzzOp::Read),
        (0i64..50).prop_map(FuzzOp::Assign),
        (1i64..5).prop_map(FuzzOp::Add),
        (1i64..5).prop_map(FuzzOp::Sub),
    ];
    prop_oneof![
        (1u64..8).prop_map(FuzzEvent::Begin),
        (1u64..8, 0usize..3, op).prop_map(|(t, r, o)| FuzzEvent::Execute(t, r, o)),
        (1u64..8).prop_map(FuzzEvent::Commit),
        (1u64..8).prop_map(FuzzEvent::Abort),
        (1u64..8).prop_map(FuzzEvent::Sleep),
        (1u64..8).prop_map(FuzzEvent::Awake),
        Just(FuzzEvent::Tick),
    ]
}

fn world() -> (Gtm, Vec<ResourceId>) {
    let db = Arc::new(Database::new());
    let schema = TableSchema::new(
        "Obj",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("v", ValueKind::Int)],
    )
    .unwrap();
    let table = db.create_table(schema, vec![Constraint::non_negative("v>=0", 1)]).unwrap();
    let boot = TxnId(1 << 40);
    db.begin(boot).unwrap();
    let mut bindings = BindingRegistry::new();
    let mut rs = Vec::new();
    for i in 0..3 {
        let row = db.insert(boot, table, Row::new(vec![Value::Int(i), Value::Int(1_000)])).unwrap();
        let o = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
        rs.push(ResourceId::atomic(o));
    }
    db.commit(boot).unwrap();
    (Gtm::new(db, bindings, GtmConfig::default()), rs)
}

fn drive(
    mut gtm: Gtm,
    resources: &[ResourceId],
    events: &[FuzzEvent],
) -> Result<(), TestCaseError> {
    let mut clock = 0u64;
    for ev in events {
        clock += 100_000; // 0.1 s per event
        let now = Timestamp(clock);
        // All calls may fail with typed errors (bad state, unknown txn);
        // they must never panic or corrupt bookkeeping.
        match ev {
            FuzzEvent::Begin(t) => {
                let _ = gtm.begin(TxnId(*t), now);
            }
            FuzzEvent::Execute(t, r, op) => {
                let _ = gtm.execute(TxnId(*t), resources[*r], op.to_scalar(), now);
            }
            FuzzEvent::Commit(t) => {
                let _ = gtm.commit(TxnId(*t), now);
            }
            FuzzEvent::Abort(t) => {
                let _ = gtm.abort(TxnId(*t), now);
            }
            FuzzEvent::Sleep(t) => {
                let _ = gtm.sleep(TxnId(*t), now);
            }
            FuzzEvent::Awake(t) => {
                let _ = gtm.awake(TxnId(*t), now);
            }
            FuzzEvent::Tick => {
                let _ = gtm.tick(now);
            }
        }
        gtm.check_invariants().map_err(TestCaseError::fail)?;
    }
    gtm.verify_serializable().map_err(TestCaseError::fail)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_random_events_never_corrupt_state(events in prop::collection::vec(arb_event(), 1..120)) {
        let (gtm, rs) = world();
        drive(gtm, &rs, &events)?;
    }

    /// Same fuzz with every §VII policy armed at once.
    #[test]
    fn prop_random_events_with_policies(events in prop::collection::vec(arb_event(), 1..100)) {
        let db_world = world();
        let (gtm, rs) = db_world;
        let config = GtmConfig {
            starvation: Some(StarvationPolicy { deny_threshold: 1 }),
            admission: Some(AdmissionPolicy::per_unit()),
            wait_timeout: Some(pstm_types::Duration::from_secs_f64(2.0)),
            sst_retries: 1,
            ..GtmConfig::default()
        };
        let gtm = Gtm::new(gtm.database().clone(), gtm.bindings().clone(), config);
        drive(gtm, &rs, &events)?;
    }

    /// And with elder-priority fairness.
    #[test]
    fn prop_random_events_with_elder_priority(events in prop::collection::vec(arb_event(), 1..100)) {
        let (base, rs) = world();
        let config = GtmConfig { elder_priority: true, ..GtmConfig::default() };
        let gtm = Gtm::new(base.database().clone(), base.bindings().clone(), config);
        drive(gtm, &rs, &events)?;
    }
}
