//! Commit-path coverage: the eq. 2 exactness regression, the phased
//! commit API the sharded front-end drives, and failure-path bookkeeping
//! (mid-loop reconciliation errors, admission headroom after SST aborts).

use pstm_core::gtm::{CommitResult, Gtm, GtmConfig, LocalCommit};
use pstm_core::policy::AdmissionPolicy;
use pstm_core::sst::Sst;
use pstm_core::TxnState;
use pstm_storage::{BindingRegistry, ColumnDef, Constraint, Database, Row, TableSchema};
use pstm_types::{
    AbortReason, ExecOutcome, MemberId, PstmError, ResourceId, ScalarOp, Timestamp, TxnId, Value,
    ValueKind,
};
use std::sync::Arc;

fn t(i: u64) -> TxnId {
    TxnId(i)
}

fn ts(secs: f64) -> Timestamp {
    Timestamp::from_secs_f64(secs)
}

const T0: Timestamp = Timestamp(0);

/// `n` atomic Int counters with the given initial value and a `>= 0`
/// CHECK — the booking-counter shape of the paper's evaluation.
fn setup(n: usize, initial: i64, config: GtmConfig) -> (Gtm, Vec<ResourceId>) {
    let db = Arc::new(Database::new());
    let schema = TableSchema::new(
        "Counter",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("value", ValueKind::Int)],
    )
    .unwrap();
    let table = db.create_table(schema, vec![Constraint::non_negative("value >= 0", 1)]).unwrap();
    let boot = TxnId(1 << 40);
    db.begin(boot).unwrap();
    let mut bindings = BindingRegistry::new();
    let mut resources = Vec::new();
    for i in 0..n {
        let row = db
            .insert(boot, table, Row::new(vec![Value::Int(i as i64), Value::Int(initial)]))
            .unwrap();
        let obj = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
        resources.push(ResourceId::atomic(obj));
    }
    db.commit(boot).unwrap();
    (Gtm::new(db, bindings, config), resources)
}

fn value_of(gtm: &Gtm, r: ResourceId) -> Value {
    let b = gtm.bindings().resolve(r).unwrap();
    gtm.database().get_col(b.table, b.row, b.column).unwrap()
}

#[test]
fn eq2_with_inexact_ratio_commits_exactly_into_int_column() {
    // Regression (eq. 2 type drift): A halves X while a compatible ×3
    // committed in between. The intermediate ratio 50/100 is inexact, so
    // the old ratio-first evaluation produced Float(150.0) — which the
    // Int column rejected at SST time, turning a perfectly consistent
    // commit into a spurious failure. Eq. 2 evaluated in the rational
    // domain yields Int(150) and the commit succeeds.
    let (mut gtm, res) = setup(1, 100, GtmConfig::default());
    let x = res[0];

    gtm.begin(t(1), T0).unwrap(); // A: ÷2
    gtm.begin(t(2), T0).unwrap(); // B: ×3
    let (o, _) = gtm.execute(t(1), x, ScalarOp::Div(Value::Int(2)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Int(50)));
    let (o, _) = gtm.execute(t(2), x, ScalarOp::Mul(Value::Int(3)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Int(300)), "mul/div shares the member");

    let (r, _) = gtm.commit(t(2), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    assert_eq!(value_of(&gtm, x), Value::Int(300));

    // A's reconciliation: 50 · 300 / 100 = 150, exactly.
    let (r, _) = gtm.commit(t(1), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Committed, "inexact ratio must not poison an exact result");
    assert_eq!(value_of(&gtm, x), Value::Int(150));
    gtm.verify_serializable().unwrap();
    gtm.check_invariants().unwrap();
}

#[test]
fn truly_inexact_eq2_result_aborts_as_constraint_not_hard_error() {
    // When the reconciled value genuinely cannot be represented in the
    // column (5 · 300 / 2 is exact, but 5 / 2 of an odd permanent isn't
    // always), the commit must abort the transaction — never surface a
    // type error to the caller as a scheduler failure.
    let (mut gtm, res) = setup(1, 5, GtmConfig::default());
    let x = res[0];
    gtm.begin(t(1), T0).unwrap(); // A: ÷2 → temp 2.5 is float already
    gtm.begin(t(2), T0).unwrap(); // B: ×3
    let (o, _) = gtm.execute(t(1), x, ScalarOp::Div(Value::Int(2)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Float(2.5)));
    let (o, _) = gtm.execute(t(2), x, ScalarOp::Mul(Value::Int(3)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Int(15)));
    let (r, _) = gtm.commit(t(2), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);

    // A reconciles to 2.5 · 15 / 5 = Float(7.5): not admissible in an
    // Int column, so the SST rejects it — a Constraint abort, cleanly.
    let (r, _) = gtm.commit(t(1), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Aborted(AbortReason::Constraint));
    assert_eq!(gtm.state(t(1)), Some(TxnState::Aborted));
    assert_eq!(value_of(&gtm, x), Value::Int(15), "failed commit left the LDBS untouched");
    gtm.check_invariants().unwrap();
}

#[test]
fn phased_commit_local_sst_finish_round_trip() {
    // The front-end's cross-shard path: commit_local parks the txn in
    // Committing and hands back the writes; the coordinator runs the SST
    // itself; commit_finish completes bookkeeping and promotions.
    let (mut gtm, res) = setup(1, 100, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();

    let writes = match gtm.commit_local(t(1), ts(1.0)).unwrap() {
        LocalCommit::Prepared(w) => w,
        other => panic!("expected Prepared, got {other:?}"),
    };
    assert_eq!(writes, vec![(res[0], Value::Int(99))]);
    assert_eq!(gtm.state(t(1)), Some(TxnState::Committing));

    // While parked, neither commit_finish-after-terminal nor a second
    // commit_local is possible.
    assert!(matches!(
        gtm.commit_local(t(1), ts(1.0)),
        Err(PstmError::InvalidState { action: "commit", .. })
    ));

    let sst = Sst::new(t(1), writes);
    sst.execute(gtm.database(), gtm.bindings()).unwrap();
    let fx = gtm.commit_finish(t(1), ts(1.0)).unwrap();
    assert!(fx.is_empty());
    assert_eq!(gtm.state(t(1)), Some(TxnState::Committed));
    assert_eq!(value_of(&gtm, res[0]), Value::Int(99));
    gtm.verify_serializable().unwrap();
    gtm.check_invariants().unwrap();
}

#[test]
fn phased_commit_abort_releases_and_promotes() {
    // A parked transaction whose coordinator's SST failed must release
    // its resources to waiters when commit_abort cleans it up.
    let (mut gtm, res) = setup(1, 100, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(7)), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(8)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);

    match gtm.commit_local(t(1), ts(1.0)).unwrap() {
        LocalCommit::Prepared(_) => {}
        other => panic!("expected Prepared, got {other:?}"),
    }
    let fx = gtm.commit_abort(t(1), AbortReason::SstFailure, ts(1.0)).unwrap();
    assert_eq!(gtm.state(t(1)), Some(TxnState::Aborted));
    assert!(!fx.aborted.iter().any(|(x, _)| *x == t(1)), "own fate is not a side effect");
    assert_eq!(fx.resumed.len(), 1, "the waiter takes over the released resource");
    assert_eq!(fx.resumed[0].0, t(2));
    assert_eq!(value_of(&gtm, res[0]), Value::Int(100), "nothing reached the LDBS");
    gtm.check_invariants().unwrap();

    // commit_abort outside the Committing window is an invalid state.
    assert!(matches!(
        gtm.commit_abort(t(2), AbortReason::SstFailure, ts(2.0)),
        Err(PstmError::InvalidState { action: "commit-abort", .. })
    ));
}

#[test]
fn midloop_reconciliation_error_strands_no_resource() {
    // A touches two resources; the first reconciles fine, the second
    // overflows (a compatible committer moved the permanent value so the
    // eq. 1 sum exceeds i64). The whole commit must unwind: no resource
    // left with the txn in pending/committing, waiters resumed, and the
    // cross-structure invariants intact.
    let (mut gtm, res) = setup(2, 100, GtmConfig::default());
    let (r0, r1) = (res[0], res[1]);

    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), r0, ScalarOp::Add(Value::Int(5)), T0).unwrap();
    gtm.execute(t(1), r1, ScalarOp::Add(Value::Int(i64::MAX - 200)), T0).unwrap();

    // B moves r1's permanent value up so A's reconciliation overflows.
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(2), r1, ScalarOp::Add(Value::Int(200)), T0).unwrap();
    let (r, _) = gtm.commit(t(2), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);

    // C waits on r0 behind A (incompatible class) — it must be resumed
    // once A's failed commit releases r0.
    gtm.begin(t(3), T0).unwrap();
    let (o, _) = gtm.execute(t(3), r0, ScalarOp::Assign(Value::Int(1)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);

    // A's commit: r0 reconciles (105 + 100 − 100), then r1 overflows
    // mid-loop. The paper's Algorithm 3 has no partial-commit state — the
    // transaction dies and every resource is released.
    let (r, fx) = gtm.commit(t(1), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Aborted(AbortReason::Constraint));
    assert_eq!(gtm.state(t(1)), Some(TxnState::Aborted));
    assert_eq!(value_of(&gtm, r0), Value::Int(100), "r0's reconciled write must not survive");
    assert_eq!(value_of(&gtm, r1), Value::Int(300), "only B's commit is durable");
    assert_eq!(fx.resumed.len(), 1, "the waiter on the *first* resource is freed too");
    assert_eq!(fx.resumed[0].0, t(3));
    gtm.check_invariants().unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn group_commit_fuses_disjoint_members_and_all_land() {
    // Three bookings on three distinct counters commit as one group: one
    // fused SST applies all writes, every member finishes Committed, and
    // the LDBS shows each member's effect exactly once.
    let (mut gtm, res) = setup(3, 100, GtmConfig::default());
    for (i, r) in res.iter().enumerate() {
        let txn = t(i as u64 + 1);
        gtm.begin(txn, T0).unwrap();
        gtm.execute(txn, *r, ScalarOp::Sub(Value::Int(i as i64 + 1)), T0).unwrap();
    }

    let (results, fx) = gtm.commit_group(&[t(1), t(2), t(3)], ts(1.0)).unwrap();
    assert_eq!(results.len(), 3);
    for (txn, r) in &results {
        assert_eq!(*r, CommitResult::Committed, "{txn:?}");
    }
    assert_eq!(fx.sst_busy, pstm_types::Duration(0), "no retries, no busy charge");
    for (i, r) in res.iter().enumerate() {
        assert_eq!(value_of(&gtm, *r), Value::Int(100 - (i as i64 + 1)));
    }
    gtm.verify_serializable().unwrap();
    gtm.check_invariants().unwrap();
}

#[test]
fn group_commit_overlap_cuts_before_reconciliation_and_loses_no_update() {
    // Two compatible subtractors share one counter. Their write sets
    // overlap, so they must NOT fuse: the second may only reconcile after
    // the first's SST applied, or its write would be computed against the
    // stale permanent value and clobber the first's booking.
    let (mut gtm, res) = setup(1, 100, GtmConfig::default());
    let x = res[0];
    gtm.begin(t(1), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(1), x, ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.execute(t(2), x, ScalarOp::Sub(Value::Int(2)), T0).unwrap();

    let (results, _) = gtm.commit_group(&[t(1), t(2)], ts(1.0)).unwrap();
    for (txn, r) in &results {
        assert_eq!(*r, CommitResult::Committed, "{txn:?}");
    }
    // 100 − 1 − 2: both bookings durable — the lost-update sentinel.
    assert_eq!(value_of(&gtm, x), Value::Int(97));
    gtm.verify_serializable().unwrap();
    gtm.check_invariants().unwrap();
}

#[test]
fn group_commit_constraint_violator_aborts_alone() {
    // One member's reconciled value violates the CHECK; the fused flush
    // is rejected atomically, then the per-member fallback settles each
    // member individually — innocents commit, only the violator aborts.
    let (mut gtm, res) = setup(2, 100, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(2), res[1], ScalarOp::Sub(Value::Int(150)), T0).unwrap();

    let (results, _) = gtm.commit_group(&[t(1), t(2)], ts(1.0)).unwrap();
    let fate = |txn: TxnId| results.iter().find(|(x, _)| *x == txn).unwrap().1.clone();
    assert_eq!(fate(t(1)), CommitResult::Committed, "innocent member lands");
    assert_eq!(fate(t(2)), CommitResult::Aborted(AbortReason::Constraint));
    assert_eq!(value_of(&gtm, res[0]), Value::Int(99));
    assert_eq!(value_of(&gtm, res[1]), Value::Int(100), "violator left no trace");
    gtm.verify_serializable().unwrap();
    gtm.check_invariants().unwrap();
}

#[test]
fn group_commit_retry_delay_is_charged_once_per_batch_attempt() {
    // A transient I/O failure on the fused flush charges sst_retry_delay
    // once per *batch* retry — not once per member. With 2 members and a
    // persistent I/O fault exhausting `sst_retries` retries, the busy
    // charge is exactly retries × delay (the unbatched path would pay
    // that per member).
    use pstm_faults::{FaultInjector, FaultPlan};
    let config = GtmConfig {
        sst_retries: 3,
        sst_retry_delay: pstm_types::Duration::from_secs_f64(0.010),
        ..GtmConfig::default()
    };
    let (mut gtm, res) = setup(2, 100, config);
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(2), res[1], ScalarOp::Sub(Value::Int(2)), T0).unwrap();

    // Every sst-apply arrival fails with I/O (ppm = 1_000_000).
    let injector = Arc::new(FaultInjector::new(FaultPlan::new(7).io_on_sst_apply_each(1_000_000)));
    gtm.database().set_fault_hook(Arc::clone(&injector) as _);

    let (results, fx) = gtm.commit_group(&[t(1), t(2)], ts(1.0)).unwrap();
    for (txn, r) in &results {
        assert_eq!(*r, CommitResult::Aborted(AbortReason::SstFailure), "{txn:?}");
    }
    let expected = pstm_types::Duration(config.sst_retry_delay.0 * u64::from(config.sst_retries));
    assert_eq!(
        fx.sst_busy, expected,
        "one busy charge per batch attempt, not per member (got {:?}, want {:?})",
        fx.sst_busy, expected
    );
    gtm.database().clear_fault_hook();
    gtm.check_invariants().unwrap();
}

#[test]
fn sst_constraint_abort_restores_admission_headroom() {
    // Admission bounds concurrent subtractors by the resource value; a
    // holder whose SST is rejected by the CHECK must *give back* its
    // admission slot, or the denied waiter would starve on a free
    // resource.
    let config = GtmConfig {
        admission: Some(AdmissionPolicy { unit: 1, max_holders: 1 }),
        ..GtmConfig::default()
    };
    let (mut gtm, res) = setup(1, 100, config);
    let x = res[0];

    // A takes the only admission slot and will violate `value >= 0`.
    gtm.begin(t(1), T0).unwrap();
    let (o, _) = gtm.execute(t(1), x, ScalarOp::Sub(Value::Int(150)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Int(-50)), "virtual copies are unchecked");

    // B is admission-denied while A holds the slot.
    gtm.begin(t(2), T0).unwrap();
    let (o, _) = gtm.execute(t(2), x, ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    assert_eq!(gtm.stats().admission_denials, 1);

    // A's SST violates the CHECK → Constraint abort → B admitted.
    let (r, fx) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Aborted(AbortReason::Constraint));
    assert_eq!(fx.resumed.len(), 1, "headroom returned to the waiter");
    assert_eq!(fx.resumed[0].0, t(2));
    assert_eq!(fx.resumed[0].1, Value::Int(99));
    gtm.check_invariants().unwrap();

    // And B can now commit its booking.
    let (r, _) = gtm.commit(t(2), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    assert_eq!(value_of(&gtm, x), Value::Int(99));
    gtm.verify_serializable().unwrap();
}
