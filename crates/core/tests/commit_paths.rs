//! Commit-path coverage: the eq. 2 exactness regression, the phased
//! commit API the sharded front-end drives, and failure-path bookkeeping
//! (mid-loop reconciliation errors, admission headroom after SST aborts).

use pstm_core::gtm::{CommitResult, Gtm, GtmConfig, LocalCommit};
use pstm_core::policy::AdmissionPolicy;
use pstm_core::sst::Sst;
use pstm_core::TxnState;
use pstm_storage::{BindingRegistry, ColumnDef, Constraint, Database, Row, TableSchema};
use pstm_types::{
    AbortReason, ExecOutcome, MemberId, PstmError, ResourceId, ScalarOp, Timestamp, TxnId, Value,
    ValueKind,
};
use std::sync::Arc;

fn t(i: u64) -> TxnId {
    TxnId(i)
}

fn ts(secs: f64) -> Timestamp {
    Timestamp::from_secs_f64(secs)
}

const T0: Timestamp = Timestamp(0);

/// `n` atomic Int counters with the given initial value and a `>= 0`
/// CHECK — the booking-counter shape of the paper's evaluation.
fn setup(n: usize, initial: i64, config: GtmConfig) -> (Gtm, Vec<ResourceId>) {
    let db = Arc::new(Database::new());
    let schema = TableSchema::new(
        "Counter",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("value", ValueKind::Int)],
    )
    .unwrap();
    let table = db.create_table(schema, vec![Constraint::non_negative("value >= 0", 1)]).unwrap();
    let boot = TxnId(1 << 40);
    db.begin(boot).unwrap();
    let mut bindings = BindingRegistry::new();
    let mut resources = Vec::new();
    for i in 0..n {
        let row = db
            .insert(boot, table, Row::new(vec![Value::Int(i as i64), Value::Int(initial)]))
            .unwrap();
        let obj = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
        resources.push(ResourceId::atomic(obj));
    }
    db.commit(boot).unwrap();
    (Gtm::new(db, bindings, config), resources)
}

fn value_of(gtm: &Gtm, r: ResourceId) -> Value {
    let b = gtm.bindings().resolve(r).unwrap();
    gtm.database().get_col(b.table, b.row, b.column).unwrap()
}

#[test]
fn eq2_with_inexact_ratio_commits_exactly_into_int_column() {
    // Regression (eq. 2 type drift): A halves X while a compatible ×3
    // committed in between. The intermediate ratio 50/100 is inexact, so
    // the old ratio-first evaluation produced Float(150.0) — which the
    // Int column rejected at SST time, turning a perfectly consistent
    // commit into a spurious failure. Eq. 2 evaluated in the rational
    // domain yields Int(150) and the commit succeeds.
    let (mut gtm, res) = setup(1, 100, GtmConfig::default());
    let x = res[0];

    gtm.begin(t(1), T0).unwrap(); // A: ÷2
    gtm.begin(t(2), T0).unwrap(); // B: ×3
    let (o, _) = gtm.execute(t(1), x, ScalarOp::Div(Value::Int(2)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Int(50)));
    let (o, _) = gtm.execute(t(2), x, ScalarOp::Mul(Value::Int(3)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Int(300)), "mul/div shares the member");

    let (r, _) = gtm.commit(t(2), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    assert_eq!(value_of(&gtm, x), Value::Int(300));

    // A's reconciliation: 50 · 300 / 100 = 150, exactly.
    let (r, _) = gtm.commit(t(1), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Committed, "inexact ratio must not poison an exact result");
    assert_eq!(value_of(&gtm, x), Value::Int(150));
    gtm.verify_serializable().unwrap();
    gtm.check_invariants().unwrap();
}

#[test]
fn truly_inexact_eq2_result_aborts_as_constraint_not_hard_error() {
    // When the reconciled value genuinely cannot be represented in the
    // column (5 · 300 / 2 is exact, but 5 / 2 of an odd permanent isn't
    // always), the commit must abort the transaction — never surface a
    // type error to the caller as a scheduler failure.
    let (mut gtm, res) = setup(1, 5, GtmConfig::default());
    let x = res[0];
    gtm.begin(t(1), T0).unwrap(); // A: ÷2 → temp 2.5 is float already
    gtm.begin(t(2), T0).unwrap(); // B: ×3
    let (o, _) = gtm.execute(t(1), x, ScalarOp::Div(Value::Int(2)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Float(2.5)));
    let (o, _) = gtm.execute(t(2), x, ScalarOp::Mul(Value::Int(3)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Int(15)));
    let (r, _) = gtm.commit(t(2), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);

    // A reconciles to 2.5 · 15 / 5 = Float(7.5): not admissible in an
    // Int column, so the SST rejects it — a Constraint abort, cleanly.
    let (r, _) = gtm.commit(t(1), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Aborted(AbortReason::Constraint));
    assert_eq!(gtm.state(t(1)), Some(TxnState::Aborted));
    assert_eq!(value_of(&gtm, x), Value::Int(15), "failed commit left the LDBS untouched");
    gtm.check_invariants().unwrap();
}

#[test]
fn phased_commit_local_sst_finish_round_trip() {
    // The front-end's cross-shard path: commit_local parks the txn in
    // Committing and hands back the writes; the coordinator runs the SST
    // itself; commit_finish completes bookkeeping and promotions.
    let (mut gtm, res) = setup(1, 100, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();

    let writes = match gtm.commit_local(t(1), ts(1.0)).unwrap() {
        LocalCommit::Prepared(w) => w,
        other => panic!("expected Prepared, got {other:?}"),
    };
    assert_eq!(writes, vec![(res[0], Value::Int(99))]);
    assert_eq!(gtm.state(t(1)), Some(TxnState::Committing));

    // While parked, neither commit_finish-after-terminal nor a second
    // commit_local is possible.
    assert!(matches!(
        gtm.commit_local(t(1), ts(1.0)),
        Err(PstmError::InvalidState { action: "commit", .. })
    ));

    let sst = Sst::new(t(1), writes);
    sst.execute(gtm.database(), gtm.bindings()).unwrap();
    let fx = gtm.commit_finish(t(1), ts(1.0)).unwrap();
    assert!(fx.is_empty());
    assert_eq!(gtm.state(t(1)), Some(TxnState::Committed));
    assert_eq!(value_of(&gtm, res[0]), Value::Int(99));
    gtm.verify_serializable().unwrap();
    gtm.check_invariants().unwrap();
}

#[test]
fn phased_commit_abort_releases_and_promotes() {
    // A parked transaction whose coordinator's SST failed must release
    // its resources to waiters when commit_abort cleans it up.
    let (mut gtm, res) = setup(1, 100, GtmConfig::default());
    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), res[0], ScalarOp::Assign(Value::Int(7)), T0).unwrap();
    gtm.begin(t(2), T0).unwrap();
    let (o, _) = gtm.execute(t(2), res[0], ScalarOp::Assign(Value::Int(8)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);

    match gtm.commit_local(t(1), ts(1.0)).unwrap() {
        LocalCommit::Prepared(_) => {}
        other => panic!("expected Prepared, got {other:?}"),
    }
    let fx = gtm.commit_abort(t(1), AbortReason::SstFailure, ts(1.0)).unwrap();
    assert_eq!(gtm.state(t(1)), Some(TxnState::Aborted));
    assert!(!fx.aborted.iter().any(|(x, _)| *x == t(1)), "own fate is not a side effect");
    assert_eq!(fx.resumed.len(), 1, "the waiter takes over the released resource");
    assert_eq!(fx.resumed[0].0, t(2));
    assert_eq!(value_of(&gtm, res[0]), Value::Int(100), "nothing reached the LDBS");
    gtm.check_invariants().unwrap();

    // commit_abort outside the Committing window is an invalid state.
    assert!(matches!(
        gtm.commit_abort(t(2), AbortReason::SstFailure, ts(2.0)),
        Err(PstmError::InvalidState { action: "commit-abort", .. })
    ));
}

#[test]
fn midloop_reconciliation_error_strands_no_resource() {
    // A touches two resources; the first reconciles fine, the second
    // overflows (a compatible committer moved the permanent value so the
    // eq. 1 sum exceeds i64). The whole commit must unwind: no resource
    // left with the txn in pending/committing, waiters resumed, and the
    // cross-structure invariants intact.
    let (mut gtm, res) = setup(2, 100, GtmConfig::default());
    let (r0, r1) = (res[0], res[1]);

    gtm.begin(t(1), T0).unwrap();
    gtm.execute(t(1), r0, ScalarOp::Add(Value::Int(5)), T0).unwrap();
    gtm.execute(t(1), r1, ScalarOp::Add(Value::Int(i64::MAX - 200)), T0).unwrap();

    // B moves r1's permanent value up so A's reconciliation overflows.
    gtm.begin(t(2), T0).unwrap();
    gtm.execute(t(2), r1, ScalarOp::Add(Value::Int(200)), T0).unwrap();
    let (r, _) = gtm.commit(t(2), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);

    // C waits on r0 behind A (incompatible class) — it must be resumed
    // once A's failed commit releases r0.
    gtm.begin(t(3), T0).unwrap();
    let (o, _) = gtm.execute(t(3), r0, ScalarOp::Assign(Value::Int(1)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);

    // A's commit: r0 reconciles (105 + 100 − 100), then r1 overflows
    // mid-loop. The paper's Algorithm 3 has no partial-commit state — the
    // transaction dies and every resource is released.
    let (r, fx) = gtm.commit(t(1), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Aborted(AbortReason::Constraint));
    assert_eq!(gtm.state(t(1)), Some(TxnState::Aborted));
    assert_eq!(value_of(&gtm, r0), Value::Int(100), "r0's reconciled write must not survive");
    assert_eq!(value_of(&gtm, r1), Value::Int(300), "only B's commit is durable");
    assert_eq!(fx.resumed.len(), 1, "the waiter on the *first* resource is freed too");
    assert_eq!(fx.resumed[0].0, t(3));
    gtm.check_invariants().unwrap();
    gtm.verify_serializable().unwrap();
}

#[test]
fn sst_constraint_abort_restores_admission_headroom() {
    // Admission bounds concurrent subtractors by the resource value; a
    // holder whose SST is rejected by the CHECK must *give back* its
    // admission slot, or the denied waiter would starve on a free
    // resource.
    let config = GtmConfig {
        admission: Some(AdmissionPolicy { unit: 1, max_holders: 1 }),
        ..GtmConfig::default()
    };
    let (mut gtm, res) = setup(1, 100, config);
    let x = res[0];

    // A takes the only admission slot and will violate `value >= 0`.
    gtm.begin(t(1), T0).unwrap();
    let (o, _) = gtm.execute(t(1), x, ScalarOp::Sub(Value::Int(150)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Completed(Value::Int(-50)), "virtual copies are unchecked");

    // B is admission-denied while A holds the slot.
    gtm.begin(t(2), T0).unwrap();
    let (o, _) = gtm.execute(t(2), x, ScalarOp::Sub(Value::Int(1)), T0).unwrap();
    assert_eq!(o, ExecOutcome::Waiting);
    assert_eq!(gtm.stats().admission_denials, 1);

    // A's SST violates the CHECK → Constraint abort → B admitted.
    let (r, fx) = gtm.commit(t(1), ts(1.0)).unwrap();
    assert_eq!(r, CommitResult::Aborted(AbortReason::Constraint));
    assert_eq!(fx.resumed.len(), 1, "headroom returned to the waiter");
    assert_eq!(fx.resumed[0].0, t(2));
    assert_eq!(fx.resumed[0].1, Value::Int(99));
    gtm.check_invariants().unwrap();

    // And B can now commit its booking.
    let (r, _) = gtm.commit(t(2), ts(2.0)).unwrap();
    assert_eq!(r, CommitResult::Committed);
    assert_eq!(value_of(&gtm, x), Value::Int(99));
    gtm.verify_serializable().unwrap();
}
