//! Logical dependence among object data members.
//!
//! The paper's §IV relaxation reads: "only transaction operations on
//! logically dependent items (e.g. quantity and price of a given product)
//! can generate a conflict, while operations on not-logical dependent
//! data members are compatible."
//!
//! The GTM's default is full independence — distinct members never
//! conflict. A [`DependenceMap`] declares groups of members that *are*
//! logically dependent: conflict checks (invocation, promotion, awakening,
//! deadlock edges) then span the whole group, i.e. an assignment to a
//! product's `price` conflicts with an additive update of the same
//! product's `quantity` exactly as if they touched one member.

use pstm_types::{PstmError, PstmResult, ResourceId};
use std::collections::BTreeMap;

/// Declared dependence groups over resources.
#[derive(Clone, Debug, Default)]
pub struct DependenceMap {
    group_of: BTreeMap<ResourceId, usize>,
    members: Vec<Vec<ResourceId>>,
}

impl DependenceMap {
    /// The empty map — every member independent (the paper's relaxation
    /// at full strength).
    #[must_use]
    pub fn new() -> Self {
        DependenceMap::default()
    }

    /// Declares `members` mutually logically dependent. Returns the group
    /// id. A resource may belong to at most one group; groups of fewer
    /// than two members are pointless and rejected.
    pub fn declare_dependent(&mut self, members: &[ResourceId]) -> PstmResult<usize> {
        if members.len() < 2 {
            return Err(PstmError::internal("a dependence group needs at least two members"));
        }
        for m in members {
            if self.group_of.contains_key(m) {
                return Err(PstmError::AlreadyExists(format!(
                    "{m} already belongs to a dependence group"
                )));
            }
        }
        let mut sorted: Vec<ResourceId> = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() < 2 {
            return Err(PstmError::internal("dependence group members must be distinct"));
        }
        let id = self.members.len();
        for m in &sorted {
            self.group_of.insert(*m, id);
        }
        self.members.push(sorted);
        Ok(id)
    }

    /// Every member logically dependent on `resource`, including
    /// `resource` itself. Returns a one-element slice-equivalent for
    /// independent members.
    pub fn related(&self, resource: ResourceId) -> impl Iterator<Item = ResourceId> + '_ {
        match self.group_of.get(&resource) {
            Some(&g) => RelatedIter::Group(self.members[g].iter().copied()),
            None => RelatedIter::Single(std::iter::once(resource)),
        }
    }

    /// Whether two resources are logically dependent (same member counts).
    #[must_use]
    pub fn dependent(&self, a: ResourceId, b: ResourceId) -> bool {
        if a == b {
            return true;
        }
        match (self.group_of.get(&a), self.group_of.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of declared groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.members.len()
    }
}

enum RelatedIter<I: Iterator<Item = ResourceId>> {
    Single(std::iter::Once<ResourceId>),
    Group(I),
}

impl<I: Iterator<Item = ResourceId>> Iterator for RelatedIter<I> {
    type Item = ResourceId;
    fn next(&mut self) -> Option<ResourceId> {
        match self {
            RelatedIter::Single(i) => i.next(),
            RelatedIter::Group(i) => i.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_types::{MemberId, ObjectId};

    fn r(o: u32, m: u16) -> ResourceId {
        ResourceId::new(ObjectId(o), MemberId(m))
    }

    #[test]
    fn independent_by_default() {
        let d = DependenceMap::new();
        assert!(!d.dependent(r(0, 0), r(0, 1)));
        assert!(d.dependent(r(0, 0), r(0, 0)));
        assert_eq!(d.related(r(0, 0)).collect::<Vec<_>>(), vec![r(0, 0)]);
        assert_eq!(d.group_count(), 0);
    }

    #[test]
    fn declared_groups_relate_members() {
        let mut d = DependenceMap::new();
        let g = d.declare_dependent(&[r(0, 0), r(0, 1)]).unwrap();
        assert_eq!(g, 0);
        assert!(d.dependent(r(0, 0), r(0, 1)));
        assert!(!d.dependent(r(0, 0), r(1, 0)));
        let rel: Vec<_> = d.related(r(0, 1)).collect();
        assert_eq!(rel, vec![r(0, 0), r(0, 1)]);
    }

    #[test]
    fn separate_groups_do_not_relate() {
        let mut d = DependenceMap::new();
        d.declare_dependent(&[r(0, 0), r(0, 1)]).unwrap();
        d.declare_dependent(&[r(1, 0), r(1, 1)]).unwrap();
        assert!(!d.dependent(r(0, 0), r(1, 0)));
        assert_eq!(d.group_count(), 2);
    }

    #[test]
    fn overlapping_and_degenerate_groups_rejected() {
        let mut d = DependenceMap::new();
        d.declare_dependent(&[r(0, 0), r(0, 1)]).unwrap();
        assert!(d.declare_dependent(&[r(0, 1), r(0, 2)]).is_err(), "overlap");
        assert!(d.declare_dependent(&[r(5, 0)]).is_err(), "singleton");
        assert!(d.declare_dependent(&[r(6, 0), r(6, 0)]).is_err(), "duplicate member");
    }
}
