//! The §VII extensions, implemented as pluggable policies.
//!
//! The paper's conclusions identify two open problems and sketch their
//! fixes; both are implemented here and benchmarked by the ablation
//! harness:
//!
//! 1. **Starvation** of incompatible transactions behind an endless stream
//!    of mutually-compatible holders → [`StarvationPolicy`]: deny further
//!    compatible grants on a resource once its wait queue holds at least
//!    `threshold` incompatible waiters (the paper's "lock-deny").
//! 2. **High reconciliation-abort rate** from integrity constraints →
//!    [`AdmissionPolicy`]: bound the number of concurrent compatible
//!    mutators "in function of the current value X of the resource" — with
//!    a per-transaction worst-case decrement `unit`, at most
//!    `floor(X / unit)` subtractors may hold the resource at once, which
//!    makes `X ≥ 0` violations at SST time impossible for conforming
//!    transactions.

use pstm_types::{OpClass, Value};

/// Lock-deny starvation control.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StarvationPolicy {
    /// Deny new compatible grants once this many incompatible waiters are
    /// queued (and awake) on the resource.
    pub deny_threshold: usize,
}

impl StarvationPolicy {
    /// Should a new, otherwise-grantable invocation be denied (queued)
    /// because `incompatible_waiters` are already waiting?
    #[must_use]
    pub fn deny(&self, incompatible_waiters: usize) -> bool {
        incompatible_waiters >= self.deny_threshold
    }
}

/// Value-aware admission control for reconcilable mutators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionPolicy {
    /// Worst-case magnitude a single admitted transaction may subtract
    /// (the paper's booking scenario: 1 ticket per transaction).
    pub unit: i64,
    /// Hard cap regardless of the value (protects huge counters from
    /// unbounded holder sets). `usize::MAX` disables the cap.
    pub max_holders: usize,
}

impl AdmissionPolicy {
    /// Policy for unit-decrement bookings.
    #[must_use]
    pub fn per_unit() -> Self {
        AdmissionPolicy { unit: 1, max_holders: usize::MAX }
    }

    /// How many concurrent additive mutators the current value admits.
    /// Non-numeric or negative values admit none.
    #[must_use]
    pub fn allowed_holders(&self, current: &Value) -> usize {
        let v = match current {
            Value::Int(i) => *i,
            Value::Float(f) => f.floor() as i64,
            _ => 0,
        };
        if v <= 0 || self.unit <= 0 {
            return 0;
        }
        usize::try_from(v / self.unit).unwrap_or(usize::MAX).min(self.max_holders)
    }

    /// Should an invocation of `class` be denied given `current_holders`
    /// already admitted and the resource's current value? Only additive
    /// updates are value-bounded — they are the class that consumes
    /// constrained resources; reads and (solo, exclusive) assignments are
    /// bounded by compatibility alone.
    #[must_use]
    pub fn deny(&self, class: OpClass, current_holders: usize, current: &Value) -> bool {
        class == OpClass::UpdateAddSub && current_holders >= self.allowed_holders(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starvation_threshold() {
        let p = StarvationPolicy { deny_threshold: 3 };
        assert!(!p.deny(0));
        assert!(!p.deny(2));
        assert!(p.deny(3));
        assert!(p.deny(10));
    }

    #[test]
    fn admission_scales_with_value() {
        let p = AdmissionPolicy::per_unit();
        assert_eq!(p.allowed_holders(&Value::Int(5)), 5);
        assert_eq!(p.allowed_holders(&Value::Int(0)), 0);
        assert_eq!(p.allowed_holders(&Value::Int(-2)), 0);
        assert_eq!(p.allowed_holders(&Value::Float(3.9)), 3);
        assert_eq!(p.allowed_holders(&Value::Text("x".into())), 0);
    }

    #[test]
    fn admission_unit_divides() {
        let p = AdmissionPolicy { unit: 10, max_holders: usize::MAX };
        assert_eq!(p.allowed_holders(&Value::Int(35)), 3);
        assert_eq!(p.allowed_holders(&Value::Int(9)), 0);
    }

    #[test]
    fn admission_cap_applies() {
        let p = AdmissionPolicy { unit: 1, max_holders: 4 };
        assert_eq!(p.allowed_holders(&Value::Int(1_000_000)), 4);
    }

    #[test]
    fn only_additive_class_is_value_bounded() {
        let p = AdmissionPolicy::per_unit();
        let v = Value::Int(2);
        assert!(p.deny(OpClass::UpdateAddSub, 2, &v));
        assert!(!p.deny(OpClass::UpdateAddSub, 1, &v));
        assert!(!p.deny(OpClass::Read, 99, &v));
        assert!(!p.deny(OpClass::UpdateAssign, 99, &v));
        assert!(!p.deny(OpClass::UpdateMulDiv, 99, &v));
    }

    #[test]
    fn degenerate_units_admit_none() {
        let p = AdmissionPolicy { unit: 0, max_holders: usize::MAX };
        assert_eq!(p.allowed_holders(&Value::Int(100)), 0);
    }
}
