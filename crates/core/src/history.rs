//! History recording and serializability checking.
//!
//! §V of the paper argues the GTM's schedules are serializable because
//! compatible operations work on virtual data, the SST is a classical
//! short transaction, and compatible operations' reconciled results are
//! order-independent. This module makes the claim *testable*: the GTM
//! records every committed transaction's logical operations and the
//! commit order; [`HistoryRecorder::verify_final_state`] replays the
//! committed transactions **serially, in commit order**, from the initial
//! values and demands the database's final state match — final-state
//! equivalence to a serial schedule.

use pstm_types::{PstmResult, ResourceId, ScalarOp, TxnId, Value};
use std::collections::BTreeMap;

/// One committed transaction's logical footprint.
#[derive(Clone, Debug, PartialEq)]
pub struct CommittedTxn {
    /// The transaction.
    pub txn: TxnId,
    /// Its operations, in issue order.
    pub ops: Vec<(ResourceId, ScalarOp)>,
}

/// Records initial values, committed transactions and commit order.
#[derive(Clone, Debug, Default)]
pub struct HistoryRecorder {
    initial: BTreeMap<ResourceId, Value>,
    committed: Vec<CommittedTxn>,
}

impl HistoryRecorder {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        HistoryRecorder::default()
    }

    /// Captures the value of `resource` the first time any transaction is
    /// granted it. Because a grant necessarily precedes any commit on the
    /// resource, the first observation is the true initial value.
    pub fn observe_initial(&mut self, resource: ResourceId, value: &Value) {
        self.initial.entry(resource).or_insert_with(|| value.clone());
    }

    /// Appends a committed transaction (called at SST success, in commit
    /// order).
    pub fn record_commit(&mut self, txn: TxnId, ops: Vec<(ResourceId, ScalarOp)>) {
        self.committed.push(CommittedTxn { txn, ops });
    }

    /// Number of committed transactions.
    #[must_use]
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    /// The commit order.
    #[must_use]
    pub fn commit_order(&self) -> Vec<TxnId> {
        self.committed.iter().map(|c| c.txn).collect()
    }

    /// Every resource any committed transaction (or initial observation)
    /// touched.
    #[must_use]
    pub fn touched_resources(&self) -> Vec<ResourceId> {
        self.initial.keys().copied().collect()
    }

    /// Replays the committed transactions serially in commit order from
    /// the initial values.
    pub fn replay_serial(&self) -> PstmResult<BTreeMap<ResourceId, Value>> {
        let mut state = self.initial.clone();
        for c in &self.committed {
            for (resource, op) in &c.ops {
                let cur = state.get(resource).cloned().ok_or_else(|| {
                    pstm_types::PstmError::internal(format!(
                        "replay touches {resource} with no initial value"
                    ))
                })?;
                let new = op.apply(&cur)?;
                if op.is_mutation() {
                    state.insert(*resource, new);
                }
            }
        }
        Ok(state)
    }

    /// Final-state serializability check: the serial replay must equal
    /// the observed final values for every touched resource. Float
    /// comparisons use a relative epsilon (reconciliation reassociates
    /// float arithmetic).
    pub fn verify_final_state(&self, finals: &BTreeMap<ResourceId, Value>) -> Result<(), String> {
        let replayed = self.replay_serial().map_err(|e| e.to_string())?;
        for (resource, expected) in &replayed {
            let Some(actual) = finals.get(resource) else {
                return Err(format!("no final value observed for {resource}"));
            };
            let equal = match (expected, actual) {
                (Value::Float(a), Value::Float(b)) => {
                    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
                }
                (a, b) => match (a.as_f64(), b.as_f64()) {
                    (Ok(a), Ok(b)) => (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
                    _ => a == b,
                },
            };
            if !equal {
                return Err(format!(
                    "{resource}: serial replay gives {expected}, database holds {actual} \
                     (commit order {:?})",
                    self.commit_order()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_types::{ObjectId, ResourceId};

    fn r(i: u32) -> ResourceId {
        ResourceId::atomic(ObjectId(i))
    }

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn replay_applies_ops_in_commit_order() {
        let mut h = HistoryRecorder::new();
        h.observe_initial(r(1), &Value::Int(100));
        h.record_commit(
            t(1),
            vec![(r(1), ScalarOp::Add(Value::Int(1))), (r(1), ScalarOp::Add(Value::Int(3)))],
        );
        h.record_commit(t(2), vec![(r(1), ScalarOp::Add(Value::Int(2)))]);
        let state = h.replay_serial().unwrap();
        assert_eq!(state[&r(1)], Value::Int(106));
        assert_eq!(h.commit_order(), vec![t(1), t(2)]);
        assert_eq!(h.committed_count(), 2);
    }

    #[test]
    fn first_observation_wins() {
        let mut h = HistoryRecorder::new();
        h.observe_initial(r(1), &Value::Int(100));
        h.observe_initial(r(1), &Value::Int(999)); // later grant; ignored
        assert_eq!(h.replay_serial().unwrap()[&r(1)], Value::Int(100));
    }

    #[test]
    fn verify_accepts_matching_finals() {
        let mut h = HistoryRecorder::new();
        h.observe_initial(r(1), &Value::Int(10));
        h.record_commit(t(1), vec![(r(1), ScalarOp::Sub(Value::Int(4)))]);
        let finals = BTreeMap::from([(r(1), Value::Int(6))]);
        h.verify_final_state(&finals).unwrap();
    }

    #[test]
    fn verify_rejects_divergent_finals() {
        let mut h = HistoryRecorder::new();
        h.observe_initial(r(1), &Value::Int(10));
        h.record_commit(t(1), vec![(r(1), ScalarOp::Sub(Value::Int(4)))]);
        let finals = BTreeMap::from([(r(1), Value::Int(7))]);
        let err = h.verify_final_state(&finals).unwrap_err();
        assert!(err.contains("serial replay gives 6"));
    }

    #[test]
    fn verify_rejects_missing_finals() {
        let mut h = HistoryRecorder::new();
        h.observe_initial(r(1), &Value::Int(10));
        assert!(h.verify_final_state(&BTreeMap::new()).is_err());
    }

    #[test]
    fn float_tolerance_absorbs_reassociation() {
        let mut h = HistoryRecorder::new();
        h.observe_initial(r(1), &Value::Float(100.0));
        h.record_commit(t(1), vec![(r(1), ScalarOp::Mul(Value::Float(1.1)))]);
        // 100 * 1.1 with a wobble in the last ulp.
        let finals = BTreeMap::from([(r(1), Value::Float(100.0f64 * 1.1))]);
        h.verify_final_state(&finals).unwrap();
    }

    #[test]
    fn reads_do_not_mutate_replay_state() {
        let mut h = HistoryRecorder::new();
        h.observe_initial(r(1), &Value::Int(5));
        h.record_commit(t(1), vec![(r(1), ScalarOp::Read)]);
        let finals = BTreeMap::from([(r(1), Value::Int(5))]);
        h.verify_final_state(&finals).unwrap();
    }
}
