//! The Global Transaction Manager — Algorithms 1–11 of the paper.
//!
//! Event surface (mirrors the 2PL baseline so the simulator can drive
//! either):
//!
//! | paper event                | method        |
//! |----------------------------|---------------|
//! | `⟨begin, A⟩` (Alg 1)       | [`Gtm::begin`] |
//! | `⟨op, X, A⟩` (Alg 2)       | [`Gtm::execute`] |
//! | `⟨commit, X, A⟩`+`⟨commit, A⟩` (Algs 3–4) | [`Gtm::commit`] |
//! | `⟨abort, X, A⟩`+`⟨abort, A⟩` (Algs 5–6)   | [`Gtm::abort`] |
//! | `⟨sleep, X, A⟩`+`⟨sleep, A⟩` (Algs 7–8)   | [`Gtm::sleep`] |
//! | `⟨awake, X, A⟩`+`⟨awake, A⟩` (Algs 9–10)  | [`Gtm::awake`] |
//! | `⟨unlock, X⟩` (Alg 11)     | internal promotion after removals |
//!
//! Two deliberate generalisations of Algorithm 11, both noted in
//! DESIGN.md: promotion runs after *every* removal from a resource's
//! pending/committing sets (not only when pending empties — strictly more
//! responsive, a superset of the paper's unlock); and promotion scans the
//! queue in FIFO order but *skips over* entries it cannot grant, matching
//! Algorithm 2's policy of granting compatible newcomers regardless of
//! queued incompatible work (the starvation this admits is exactly the
//! §VII problem the [`StarvationPolicy`] extension addresses).

use crate::dependence::DependenceMap;
use crate::history::HistoryRecorder;
use crate::policy::{AdmissionPolicy, StarvationPolicy};
use crate::reconcile::reconcile;
use crate::sst::{Sst, SstBatch};
use crate::state::{ResourceState, TxnRecord, TxnState, WaitEntry};
use pstm_lock::WaitsForGraph;
use pstm_obs::prof::{self, CommitPhase};
use pstm_obs::{AbortOrigin, Ctr, MetricsRegistry, TraceEvent, Tracer};
use pstm_storage::{BindingRegistry, Database};
use pstm_types::{
    AbortReason, CompatMatrix, Duration, ExecOutcome, FaultDecision, FaultSite, OpClass, PstmError,
    PstmResult, ResourceId, ScalarOp, SharedFaultHook, StepEffects, Timestamp, TxnId, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Configuration of the GTM.
#[derive(Clone, Copy, Debug)]
pub struct GtmConfig {
    /// Compatibility matrix (Table I by default; the ablation harness
    /// swaps in read/write-only to isolate the value of semantics).
    pub compat: CompatMatrix,
    /// §VII extension: lock-deny starvation control. `None` = paper
    /// behaviour.
    pub starvation: Option<StarvationPolicy>,
    /// §VII extension: value-bounded admission control. `None` = paper
    /// behaviour.
    pub admission: Option<AdmissionPolicy>,
    /// Waits-for-graph deadlock detection (paper §VII: "classical
    /// approaches ... can be used").
    pub deadlock_detection: bool,
    /// Abort waiters queued longer than this. `None` disables.
    pub wait_timeout: Option<Duration>,
    /// §VII's *other* starvation remedy — "the introduction of a
    /// transaction priority": with seniority enabled, a new compatible
    /// invocation is denied while an *older* (lower id = earlier arrival)
    /// awake transaction waits on the resource, and promotion becomes
    /// strict FIFO (no skip-over). Trades the paper's maximal sharing for
    /// wait-time fairness; benchmarked against lock-deny by the
    /// starvation ablation.
    pub elder_priority: bool,
    /// How many times a transiently-failing SST (I/O error) is retried
    /// before the transaction aborts with
    /// [`AbortReason::SstFailure`]. `0` reproduces the paper's
    /// assumption "SST is always correctly executed" — any failure is
    /// immediately fatal to the transaction. The §VII open problem on
    /// SST failure recovery is answered by setting this above zero.
    pub sst_retries: u32,
    /// Virtual time charged for each SST retry attempt (the back-off the
    /// LDBS needs before the write set is resubmitted). The committing
    /// transaction pays this — retries are not free — and the total shows
    /// up in [`StepEffects::sst_busy`] so the scheduler can delay the
    /// commit completion accordingly.
    pub sst_retry_delay: Duration,
}

impl Default for GtmConfig {
    fn default() -> Self {
        GtmConfig {
            compat: CompatMatrix::paper(),
            starvation: None,
            admission: None,
            deadlock_detection: true,
            wait_timeout: None,
            elder_priority: false,
            sst_retries: 0,
            sst_retry_delay: Duration::ZERO,
        }
    }
}

/// Counters for the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GtmStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed (SST applied).
    pub committed: u64,
    /// All aborts.
    pub aborted: u64,
    /// Sleepers aborted on awakening (Algorithm 9's third branch).
    pub aborted_sleep_conflict: u64,
    /// Deadlock victims.
    pub aborted_deadlock: u64,
    /// SSTs rejected by CHECK constraints.
    pub aborted_constraint: u64,
    /// Wait-timeout aborts.
    pub aborted_wait_timeout: u64,
    /// Operations completed (granted immediately or after a wait).
    pub ops_completed: u64,
    /// Operations that had to queue.
    pub ops_waited: u64,
    /// Grants that shared a resource with other concurrent holders —
    /// the concurrency the semantics bought.
    pub shared_grants: u64,
    /// Grants that bypassed a sleeping incompatible holder.
    pub bypassed_sleepers: u64,
    /// Reconciliations computed at commit.
    pub reconciliations: u64,
    /// SSTs executed (non-empty).
    pub ssts_executed: u64,
    /// Denials by the starvation policy.
    pub starvation_denials: u64,
    /// Denials by the admission policy.
    pub admission_denials: u64,
    /// Transient SST failures that were retried.
    pub sst_retries: u64,
    /// Transactions aborted because their SST failed persistently.
    pub aborted_sst_failure: u64,
}

impl GtmStats {
    /// Projects the legacy counter set out of an obs registry. This is
    /// the *only* way GTM stats are produced — live stats and stats
    /// rebuilt from a persisted trace go through the same projection, so
    /// they cannot drift.
    #[must_use]
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        GtmStats {
            begun: reg.counter(Ctr::Begun),
            committed: reg.counter(Ctr::Committed),
            aborted: reg.counter(Ctr::Aborted),
            aborted_sleep_conflict: reg.counter(Ctr::AbortedSleepConflict),
            aborted_deadlock: reg.counter(Ctr::AbortedDeadlock),
            aborted_constraint: reg.counter(Ctr::AbortedConstraint),
            aborted_wait_timeout: reg.counter(Ctr::AbortedLockTimeout),
            ops_completed: reg.counter(Ctr::OpsCompleted),
            ops_waited: reg.counter(Ctr::OpsWaited),
            shared_grants: reg.counter(Ctr::SharedGrants),
            bypassed_sleepers: reg.counter(Ctr::BypassedSleepers),
            reconciliations: reg.counter(Ctr::Reconciliations),
            ssts_executed: reg.counter(Ctr::SstsExecuted),
            starvation_denials: reg.counter(Ctr::StarvationDenials),
            admission_denials: reg.counter(Ctr::AdmissionDenials),
            sst_retries: reg.counter(Ctr::SstRetries),
            aborted_sst_failure: reg.counter(Ctr::AbortedSstFailure),
        }
    }
}

/// Whether an operation's worst case *decreases* the value — the ops the
/// §VII admission bound applies to.
fn op_decrements(op: &ScalarOp) -> bool {
    match op {
        ScalarOp::Sub(c) => !matches!(c, Value::Int(i) if *i <= 0),
        ScalarOp::Add(c) => {
            matches!(c, Value::Int(i) if *i < 0) || matches!(c, Value::Float(f) if *f < 0.0)
        }
        _ => false,
    }
}

/// Result of [`Gtm::commit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitResult {
    /// The SST applied; the transaction is durable.
    Committed,
    /// The SST was rejected (CHECK constraint) and the transaction
    /// aborted — the paper's §VII reconciliation-abort case.
    Aborted(AbortReason),
}

/// Result of the local-commit phase ([`Gtm::commit_local`], Algorithm 3)
/// when commit is driven in phases by an external coordinator — the
/// sharded front-end's cross-shard commit folds several shards'
/// `Prepared` writes into one SST.
#[derive(Clone, Debug, PartialEq)]
pub enum LocalCommit {
    /// Every touched resource reconciled; these writes await a global
    /// commit. The transaction is parked in `Committing` until the
    /// coordinator calls [`Gtm::commit_finish`] or [`Gtm::commit_abort`].
    Prepared(Vec<(ResourceId, Value)>),
    /// A local commit failed (reconciliation overflow, zero snapshot,
    /// engine read error); the transaction was aborted and cleaned up.
    Aborted(AbortReason, StepEffects),
}

/// Result of [`Gtm::commit_group_local`]: the reconcile-and-park half of
/// a group commit, handed to a coordinator that flushes the fused batch
/// outside this GTM's lock and then settles it with
/// [`Gtm::commit_group_finish`].
#[derive(Debug)]
pub struct GroupLocal {
    /// Members that settled during reconciliation (local aborts and
    /// batch-rejection fallbacks) — final, nothing further owed.
    pub settled: Vec<(TxnId, CommitResult)>,
    /// The fused batch of `Prepared` members, parked in `Committing`.
    /// `None` when every submitted member settled or deferred.
    pub batch: Option<SstBatch>,
    /// Members whose write estimate overlapped a batch member; untouched
    /// and still active — resubmit after the batch's flush settles.
    pub deferred: Vec<TxnId>,
    /// Reconciled members whose real writes the batch rejected: parked in
    /// `Committing`, owed a **solo** flush. The caller must execute each
    /// outside the lock protecting this GTM and settle it with
    /// [`Gtm::commit_solo_finish`].
    pub overflow: Vec<Sst>,
    /// Merged effects of the settles above (waiter mail, busy time).
    pub effects: StepEffects,
}

/// Result of [`Gtm::commit_group_finish`].
#[derive(Debug)]
pub struct GroupFinish {
    /// Members settled by the fused flush's outcome — final.
    pub settled: Vec<(TxnId, CommitResult)>,
    /// Members the fused flush could not decide (a constraint violation
    /// somewhere in the batch): each is still parked and owed a solo
    /// flush so only the violators abort. The caller must execute each
    /// outside the lock protecting this GTM and settle it with
    /// [`Gtm::commit_solo_finish`].
    pub reflush: Vec<Sst>,
    /// Merged effects of the settles above.
    pub effects: StepEffects,
}

/// Result of [`Gtm::awake`].
#[derive(Clone, Debug, PartialEq)]
pub enum AwakeResult {
    /// The transaction resumed. If its queued operation was granted as
    /// part of awakening (Algorithm 9, first branch), the operation's
    /// result is carried here.
    Resumed(Option<Value>),
    /// Incompatible activity touched its resources while it slept; the
    /// transaction was aborted (Algorithm 9, third branch).
    Aborted,
}

/// The Global Transaction Manager.
///
/// # Example
///
/// Two concurrent unit bookings share one flight and reconcile at commit:
///
/// ```
/// use pstm_core::gtm::{CommitResult, Gtm, GtmConfig};
/// use pstm_types::{ExecOutcome, ScalarOp, Timestamp, TxnId, Value};
/// use pstm_workload::counter_world;
///
/// let world = counter_world(1, 100)?;
/// let mut gtm = Gtm::new(world.db.clone(), world.bindings.clone(), GtmConfig::default());
/// let x = world.resources[0];
///
/// gtm.begin(TxnId(1), Timestamp::ZERO)?;
/// gtm.begin(TxnId(2), Timestamp::ZERO)?;
/// // Additive updates are compatible: both are granted immediately.
/// let (a, _) = gtm.execute(TxnId(1), x, ScalarOp::Sub(Value::Int(1)), Timestamp::ZERO)?;
/// let (b, _) = gtm.execute(TxnId(2), x, ScalarOp::Sub(Value::Int(1)), Timestamp::ZERO)?;
/// assert_eq!(a, ExecOutcome::Completed(Value::Int(99)));
/// assert_eq!(b, ExecOutcome::Completed(Value::Int(99))); // private virtual copy
///
/// let (r1, _) = gtm.commit(TxnId(1), Timestamp(1))?;
/// let (r2, _) = gtm.commit(TxnId(2), Timestamp(2))?;
/// assert_eq!(r1, CommitResult::Committed);
/// assert_eq!(r2, CommitResult::Committed);
///
/// let b0 = world.bindings.resolve(x)?;
/// assert_eq!(world.db.get_col(b0.table, b0.row, b0.column)?, Value::Int(98));
/// gtm.verify_serializable().unwrap();
/// # Ok::<(), pstm_types::PstmError>(())
/// ```
pub struct Gtm {
    db: Arc<Database>,
    bindings: BindingRegistry,
    txns: BTreeMap<TxnId, TxnRecord>,
    resources: BTreeMap<ResourceId, ResourceState>,
    config: GtmConfig,
    dependence: DependenceMap,
    tracer: Tracer,
    history: HistoryRecorder,
    /// Seeded fault seam consulted at this manager's commit sites
    /// (`commit-local`, `reconcile`); `None` outside chaos runs.
    fault_hook: Option<SharedFaultHook>,
    /// Shard index reported in this manager's fault-site labels.
    fault_shard: u32,
}

impl Gtm {
    /// Builds a GTM over `db` with the given resource bindings.
    #[must_use]
    pub fn new(db: Arc<Database>, bindings: BindingRegistry, config: GtmConfig) -> Self {
        Gtm {
            db,
            bindings,
            txns: BTreeMap::new(),
            resources: BTreeMap::new(),
            config,
            dependence: DependenceMap::new(),
            tracer: Tracer::disabled(),
            history: HistoryRecorder::new(),
            fault_hook: None,
            fault_shard: 0,
        }
    }

    /// Installs a fault hook consulted at this manager's labeled commit
    /// seams — the start of `commit_local` and each per-resource
    /// reconciliation. `shard` tags the sites so plans can target one
    /// shard of a sharded front-end; single-manager setups pass 0. The
    /// engine's own seams (WAL append, SST apply) are installed
    /// separately via `Database::set_fault_hook`.
    pub fn set_fault_hook(&mut self, hook: SharedFaultHook, shard: u32) {
        self.fault_hook = Some(hook);
        self.fault_shard = shard;
    }

    /// Consults the fault seam at `site`. `Io` surfaces as a transient
    /// `PstmError::Io` (the commit path's existing mapping turns it into
    /// a clean `SstFailure` abort); `Crash`/`Torn` kill the simulated
    /// process — `PstmError::Crashed` propagates raw and the manager must
    /// be discarded.
    fn fault_check(&self, site: FaultSite, now: Timestamp) -> PstmResult<()> {
        let Some(hook) = self.fault_hook.as_ref() else { return Ok(()) };
        match hook.decide(site) {
            FaultDecision::Proceed => Ok(()),
            FaultDecision::Io => {
                self.tracer.emit(
                    now,
                    TraceEvent::FaultInjected { site: site.label(), action: "io".into() },
                );
                Err(PstmError::Io(format!("injected fault at {}", site.label())))
            }
            FaultDecision::Crash | FaultDecision::Torn { .. } => {
                self.tracer.emit(
                    now,
                    TraceEvent::FaultInjected { site: site.label(), action: "crash".into() },
                );
                Err(PstmError::Crashed(site.label()))
            }
        }
    }

    /// Installs a tracer (event sink + metrics registry). Builder-style;
    /// call before scheduling begins.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer this manager emits into. Clones share the registry, so
    /// the handle stays valid however long the manager lives.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Installs a logical-dependence map (§IV): conflict checks span each
    /// declared group. Builder-style; call before scheduling begins.
    #[must_use]
    pub fn with_dependence(mut self, dependence: DependenceMap) -> Self {
        self.dependence = dependence;
        self
    }

    /// The installed dependence map.
    #[must_use]
    pub fn dependence(&self) -> &DependenceMap {
        &self.dependence
    }

    /// Counter snapshot, projected from the tracer's registry.
    #[must_use]
    pub fn stats(&self) -> GtmStats {
        self.tracer.with_registry(GtmStats::from_registry)
    }

    /// The shared database handle.
    #[must_use]
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The binding registry.
    #[must_use]
    pub fn bindings(&self) -> &BindingRegistry {
        &self.bindings
    }

    /// Current state of `txn` (`A_state`), if known.
    #[must_use]
    pub fn state(&self, txn: TxnId) -> Option<TxnState> {
        self.txns.get(&txn).map(|t| t.state)
    }

    /// The recorded history (for serializability checking).
    #[must_use]
    pub fn history(&self) -> &HistoryRecorder {
        &self.history
    }

    /// Verifies that the committed history is final-state equivalent to
    /// the serial execution in commit order, against the current database
    /// contents. See [`HistoryRecorder::verify_final_state`].
    pub fn verify_serializable(&self) -> Result<(), String> {
        let mut finals = BTreeMap::new();
        for resource in self.history.touched_resources() {
            let v = self.perm(resource).map_err(|e| e.to_string())?;
            finals.insert(resource, v);
        }
        self.history.verify_final_state(&finals)
    }

    fn perm(&self, resource: ResourceId) -> PstmResult<Value> {
        let b = self.bindings.resolve(resource)?;
        self.db.get_col(b.table, b.row, b.column)
    }

    fn txn_mut(&mut self, txn: TxnId) -> PstmResult<&mut TxnRecord> {
        self.txns.get_mut(&txn).ok_or(PstmError::UnknownTxn(txn))
    }

    fn rs(&mut self, resource: ResourceId) -> &mut ResourceState {
        self.resources.entry(resource).or_default()
    }

    // ------------------------------------------------------------------
    // Algorithm 1: ⟨begin, A⟩
    // ------------------------------------------------------------------

    /// Starts a transaction; postcondition `A_state = Active`.
    pub fn begin(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()> {
        if self.txns.contains_key(&txn) {
            return Err(PstmError::InvalidState { txn, action: "begin", state: "already known" });
        }
        if txn.0 >= crate::sst::SST_ID_BASE {
            // Ids at or above the SST base would collide with the
            // engine-level ids SSTs run under.
            return Err(PstmError::InvalidState {
                txn,
                action: "begin with an id in the reserved SST id space",
                state: "rejected",
            });
        }
        self.txns.insert(txn, TxnRecord::new(now));
        self.tracer.emit(now, TraceEvent::TxnBegin { txn });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Algorithm 2: ⟨op, X, A⟩
    // ------------------------------------------------------------------

    /// Submits one operation. Compatible invocations are granted
    /// concurrently (each on its virtual copy); incompatible ones queue.
    pub fn execute(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        now: Timestamp,
    ) -> PstmResult<(ExecOutcome, StepEffects)> {
        let record = self.txn_mut(txn)?;
        if record.state != TxnState::Active {
            return Err(PstmError::InvalidState {
                txn,
                action: "invoke",
                state: record.state.name(),
            });
        }
        let class = op.class();
        // Phase accounting: pure reads are Read; everything else on the
        // invoke path is operation bookkeeping (grants, queues, copies).
        // Admission checks nested below carve out their own time.
        let _phase = prof::PhaseTimer::start(if class == OpClass::Read {
            CommitPhase::Read
        } else {
            CommitPhase::OpBookkeeping
        });
        let held = record.classes.get(&resource).copied();
        self.tracer.emit(now, TraceEvent::OpRequested { txn, resource, class });
        let record = self.txn_mut(txn)?;

        match held {
            // Already granted under a class that covers this op: pure
            // virtual-copy work, no scheduling involved.
            Some(cur) if class == cur || class == OpClass::Read => {
                let temp =
                    record.temp.get(&resource).cloned().ok_or_else(|| {
                        PstmError::internal(format!("{txn} granted without temp"))
                    })?;
                let new = op.apply(&temp)?;
                record.temp.insert(resource, new.clone());
                record.op_log.push((resource, op));
                self.tracer.emit(
                    now,
                    TraceEvent::OpGranted {
                        txn,
                        resource,
                        class,
                        shared: false,
                        bypassed_sleeper: false,
                    },
                );
                Ok((ExecOutcome::Completed(new), StepEffects::none()))
            }
            // Strengthening Read → mutation (the §II "select then book"
            // pattern). Constraint (i) allows it because Read is
            // compatible with every update class.
            Some(OpClass::Read) => self.invoke(txn, resource, op, class, now, true),
            // Mixing incompatible mutation classes on one member violates
            // the §IV well-formedness constraint (i).
            Some(cur) => Err(PstmError::InvalidState {
                txn,
                action: "mix incompatible operation classes on one data member",
                state: cur.label(),
            }),
            // First contact with this resource.
            None => self.invoke(txn, resource, op, class, now, false),
        }
    }

    /// Whether `class` for `txn` conflicts with a blocking holder of
    /// `resource` under the configured matrix (sleeping pending holders
    /// excluded per Algorithm 2). The check spans the resource's logical
    /// dependence group: operations on logically dependent members
    /// conflict exactly like operations on one member (§IV).
    fn blocked(&self, txn: TxnId, resource: ResourceId, class: OpClass) -> bool {
        self.dependence.related(resource).any(|sibling| self.blocked_on(txn, sibling, class))
    }

    /// The single-resource blocking check underlying [`Gtm::blocked`].
    fn blocked_on(&self, txn: TxnId, resource: ResourceId, class: OpClass) -> bool {
        self.resources
            .get(&resource)
            .is_some_and(|rs| rs.conflicts_with_blockers(txn, class, &self.config.compat))
    }

    /// Algorithm 2's two branches, for both fresh invocations and
    /// Read → mutation strengthenings.
    fn invoke(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        class: OpClass,
        now: Timestamp,
        is_upgrade: bool,
    ) -> PstmResult<(ExecOutcome, StepEffects)> {
        // §IV well-formedness: at most one pending invocation at a time.
        if self.txns[&txn].pending_op.is_some() {
            return Err(PstmError::InvalidState {
                txn,
                action: "invoke while an invocation is pending",
                state: "waiting",
            });
        }
        let denied = self.grant_denied(txn, resource, class, &op, now)?;
        let blocked = self.blocked(txn, resource, class);
        if !denied && !blocked {
            return self
                .grant(txn, resource, op, class, is_upgrade, now)
                .map(|v| (ExecOutcome::Completed(v), StepEffects::none()));
        }
        // Queue (Algorithm 2, second branch).
        self.enqueue_wait(txn, resource, op, class, now, is_upgrade)?;
        let mut effects = self.post_wait_checks(txn, now)?;
        // The wait is policy-made, not contention-made: the grant was
        // free under the compatibility matrix and a §VII policy denied
        // it. Front-ends account it as admission wait.
        effects.denied_admission |= denied && !blocked;
        match Self::extract_requester(&mut effects, txn) {
            Some(outcome) => Ok((outcome, effects)),
            None => Ok((ExecOutcome::Waiting, effects)),
        }
    }

    /// Applies the §VII policies to an otherwise-grantable invocation.
    fn grant_denied(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        class: OpClass,
        op: &ScalarOp,
        now: Timestamp,
    ) -> PstmResult<bool> {
        let _phase = prof::PhaseTimer::start(CommitPhase::Admission);
        let mut denied = false;
        if self.config.elder_priority {
            let rs = self.resources.entry(resource).or_default();
            if rs.waiting.iter().any(|w| w.txn < txn && !rs.sleeping.contains(&w.txn)) {
                self.tracer.emit(now, TraceEvent::StarvationDenied { txn, resource });
                denied = true;
            }
        }
        if let Some(p) = self.config.starvation {
            let compat = self.config.compat;
            let rs = self.resources.entry(resource).or_default();
            let incompatible_waiters = rs
                .waiting
                .iter()
                .filter(|w| w.txn != txn && !rs.sleeping.contains(&w.txn))
                .filter(|w| !compat.compatible(class, w.class))
                .count();
            if p.deny(incompatible_waiters) {
                self.tracer.emit(now, TraceEvent::StarvationDenied { txn, resource });
                denied = true;
            }
        }
        if self.admission_denies(txn, resource, op)? {
            self.tracer.emit(now, TraceEvent::AdmissionDenied { txn, resource });
            denied = true;
        }
        Ok(denied)
    }

    /// The §VII admission check shared by invocation and promotion:
    /// value-bounded concurrent additive holders. Only *decrementing*
    /// operations are bounded — an addition that restocks the resource
    /// must never be admission-denied, or a sold-out resource could
    /// deadlock its own replenishment.
    fn admission_denies(
        &self,
        txn: TxnId,
        resource: ResourceId,
        op: &ScalarOp,
    ) -> PstmResult<bool> {
        let Some(p) = self.config.admission else { return Ok(false) };
        if !op_decrements(op) {
            return Ok(false);
        }
        let current = self.perm(resource)?;
        let holders = self.resources.get(&resource).map_or(0, |rs| {
            rs.pending
                .iter()
                .chain(rs.committing.iter())
                .filter(|(t, c)| **t != txn && **c == OpClass::UpdateAddSub)
                .count()
        });
        Ok(p.deny(OpClass::UpdateAddSub, holders, &current))
    }

    /// Grants `(txn, class)` on `resource` and applies `op` to the fresh
    /// virtual copy. Postconditions of Algorithm 2's first branch:
    /// `X_pending ∪= (A, op)`, `X_read^A = X_permanent`,
    /// `A_temp = X_permanent`.
    /// Upgrades and fresh grants share one path: both seed the snapshot
    /// and virtual copy from the *current* permanent value (a
    /// strengthening measures its delta from the value the mutation
    /// actually starts from).
    fn grant(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        class: OpClass,
        _is_upgrade: bool,
        now: Timestamp,
    ) -> PstmResult<Value> {
        let permanent = self.perm(resource)?;
        // Apply the operation first: a failing op (e.g. arithmetic on the
        // fresh snapshot) must not leave a phantom holder behind.
        let new = op.apply(&permanent)?;
        self.history.observe_initial(resource, &permanent);
        let matrix = self.config.compat;
        let rs = self.resources.entry(resource).or_default();
        let shared = rs.pending.iter().any(|(t, _)| *t != txn && !rs.sleeping.contains(t));
        let bypassed = rs
            .pending
            .iter()
            .any(|(t, c)| *t != txn && rs.sleeping.contains(t) && !matrix.compatible(class, *c));
        rs.pending.insert(txn, class);
        rs.read.insert(txn, permanent);
        let record = self
            .txns
            .get_mut(&txn)
            .ok_or_else(|| PstmError::internal(format!("granted {txn} has no record")))?;
        record.temp.insert(resource, new.clone());
        record.classes.insert(resource, class);
        record.op_log.push((resource, op));
        record.t_wait.remove(&resource);
        self.tracer.emit(
            now,
            TraceEvent::OpGranted { txn, resource, class, shared, bypassed_sleeper: bypassed },
        );
        Ok(new)
    }

    fn enqueue_wait(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        class: OpClass,
        now: Timestamp,
        is_upgrade: bool,
    ) -> PstmResult<()> {
        let rs = self.resources.entry(resource).or_default();
        let entry = WaitEntry { txn, class, op: op.clone(), since: now, is_upgrade };
        if is_upgrade {
            rs.waiting.push_front(entry);
        } else {
            rs.waiting.push_back(entry);
        }
        let queue_depth = rs.waiting.len() as u32;
        let record = self
            .txns
            .get_mut(&txn)
            .ok_or_else(|| PstmError::internal(format!("waiting {txn} has no record")))?;
        record.state = TxnState::Waiting;
        record.pending_op = Some((resource, op));
        record.t_wait.insert(resource, now);
        self.tracer.emit(now, TraceEvent::OpWaiting { txn, resource, class, queue_depth });
        Ok(())
    }

    /// After queuing a request: deadlock detection. Returns effects; if
    /// the requester itself died or got resumed, the caller extracts it.
    fn post_wait_checks(&mut self, requester: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        let mut effects = StepEffects::none();
        if self.config.deadlock_detection {
            // Any cycle created by this wait passes through the
            // requester, so the search is scoped to it (cheap); repeat
            // until the requester's neighbourhood is cycle-free.
            while let Some((victim, cycle)) = self.waits_for_graph().pick_victim_from(requester) {
                self.tracer.emit(now, TraceEvent::DeadlockVictim { txn: victim, cycle });
                effects.merge(self.abort_internal(
                    victim,
                    AbortReason::Deadlock,
                    AbortOrigin::Request,
                    now,
                )?);
                if victim == requester {
                    break;
                }
            }
        }
        Ok(effects)
    }

    /// Pulls the requester's own fate out of an effect set, if present,
    /// removing it from the side-effect lists (the caller learns its fate
    /// through the return value, not through `StepEffects`).
    fn extract_requester(effects: &mut StepEffects, txn: TxnId) -> Option<ExecOutcome> {
        if let Some(pos) = effects.aborted.iter().position(|(t, _)| *t == txn) {
            let (_, reason) = effects.aborted.remove(pos);
            return Some(ExecOutcome::Aborted(reason));
        }
        if let Some(pos) = effects.resumed.iter().position(|(t, _)| *t == txn) {
            let (_, value) = effects.resumed.remove(pos);
            return Some(ExecOutcome::Completed(value));
        }
        None
    }

    // ------------------------------------------------------------------
    // Algorithms 3–4: ⟨commit, X, A⟩ and ⟨commit, A⟩
    // ------------------------------------------------------------------

    /// Commits `txn`: local commit on every touched resource
    /// (reconciliation, Algorithm 3), then the global commit (Algorithm
    /// 4) — the SST flushes every `X_new` to the LDBS atomically.
    ///
    /// Transient SST failures (I/O) are retried per
    /// [`GtmConfig::sst_retries`], each attempt charged
    /// [`GtmConfig::sst_retry_delay`] of virtual time; the total charge is
    /// reported in [`StepEffects::sst_busy`] and commit-side bookkeeping
    /// (committed timestamps, promotions) happens at the delayed instant.
    pub fn commit(
        &mut self,
        txn: TxnId,
        now: Timestamp,
    ) -> PstmResult<(CommitResult, StepEffects)> {
        let writes = match self.commit_local(txn, now)? {
            LocalCommit::Prepared(writes) => writes,
            LocalCommit::Aborted(reason, effects) => {
                return Ok((CommitResult::Aborted(reason), effects));
            }
        };
        self.settle_sst(Sst::new(txn, writes), now)
    }

    /// Global-commit tail shared by [`Gtm::commit`] and the per-member
    /// fallback of [`Gtm::commit_group`]: attempt the SST (with retries),
    /// then finish or abort the parked transaction accordingly.
    fn settle_sst(&mut self, sst: Sst, now: Timestamp) -> PstmResult<(CommitResult, StepEffects)> {
        // Global commit: one SST for all writes. Transient failures
        // (I/O) are retried per the recovery policy; constraint
        // violations are permanent.
        let txn = sst.origin;
        let write_count = sst.writes.len() as u32;
        self.tracer.emit(now, TraceEvent::SstAttempt { txn, writes: write_count });
        let mut at = now;
        let mut sst_result = sst.execute(&self.db, &self.bindings);
        let mut attempts = 0;
        while attempts < self.config.sst_retries && matches!(sst_result, Err(PstmError::Io(_))) {
            attempts += 1;
            // The retry is not free: the LDBS needs its back-off before
            // the write set is resubmitted, and the committer pays it.
            at += self.config.sst_retry_delay;
            self.tracer.emit(at, TraceEvent::SstRetry { txn, attempt: attempts });
            sst_result = sst.execute(&self.db, &self.bindings);
        }
        let busy = at.since(now);
        let (result, mut effects) = self.commit_solo_finish(&sst, sst_result, at)?;
        effects.sst_busy = busy;
        // Phase boundaries for span-emitting coordinators: reconciliation
        // runs entirely at `now` in virtual time; the SST phase covers the
        // first attempt through the last retry.
        effects.reconcile_span = Some((now, now));
        effects.sst_span = Some((now, at));
        Ok((result, effects))
    }

    /// Solo flush for a member whose `SstAttempt` was already announced
    /// (batch overflow, per-member reflush): execute with the configured
    /// retries, then settle via [`Gtm::commit_solo_finish`]. Only for
    /// coordinators that own this GTM outright — lock-holding callers
    /// must execute the SST themselves, outside the lock.
    fn solo_flush_settle(
        &mut self,
        sst: Sst,
        now: Timestamp,
    ) -> PstmResult<(CommitResult, StepEffects)> {
        let mut at = now;
        let mut flush = sst.execute(&self.db, &self.bindings);
        let mut attempts = 0;
        while attempts < self.config.sst_retries && matches!(flush, Err(PstmError::Io(_))) {
            attempts += 1;
            at += self.config.sst_retry_delay;
            self.tracer.emit(at, TraceEvent::SstRetry { txn: sst.origin, attempt: attempts });
            flush = sst.execute(&self.db, &self.bindings);
        }
        let (result, mut effects) = self.commit_solo_finish(&sst, flush, at)?;
        effects.sst_busy += at.since(now);
        Ok((result, effects))
    }

    /// The resources `txn` currently holds **mutating** grants on — the
    /// conservative write-set estimate a group-commit station needs for
    /// its disjointness cut *before* reconciliation computes the real
    /// writes (reconciliation can only shrink the set, never grow it).
    #[must_use]
    pub fn mutated_resources(&self, txn: TxnId) -> Vec<ResourceId> {
        self.txns
            .get(&txn)
            .map(|rec| {
                rec.classes.iter().filter(|(_, c)| c.is_mutation()).map(|(r, _)| *r).collect()
            })
            .unwrap_or_default()
    }

    /// Group commit (the batched form of [`Gtm::commit`]): fuses members
    /// with pairwise-disjoint write sets into [`SstBatch`]es and flushes
    /// each batch as **one** SST attempt instead of one per member.
    ///
    /// The disjointness cut happens *before* any member reconciles, on
    /// the conservative [`Gtm::mutated_resources`] estimate. Order
    /// matters: reconciliation (in [`Gtm::commit_local`]) reads the
    /// current permanent state, so a member whose writes overlap an
    /// earlier member's must not reconcile until that member's SST has
    /// applied — cutting only at flush time would fuse a stale
    /// reconciliation and lose an update. An overlap therefore closes the
    /// current group; reconcile → flush runs group by group.
    ///
    /// Retry accounting is per *batch* attempt: a transiently-failing
    /// fused flush charges [`GtmConfig::sst_retry_delay`] once per retry
    /// for the whole group, not once per member. A fused constraint
    /// violation falls back to settling members individually, so only the
    /// violating members abort. Returns each member's fate plus the
    /// merged side effects.
    pub fn commit_group(
        &mut self,
        txns: &[TxnId],
        now: Timestamp,
    ) -> PstmResult<(Vec<(TxnId, CommitResult)>, StepEffects)> {
        let mut results = Vec::with_capacity(txns.len());
        let mut effects = StepEffects::none();
        let mut remaining: Vec<TxnId> = txns.to_vec();
        // `at` advances only by per-*batch* retry charges, so deferred
        // members reconcile at a time after the flush they overlapped.
        let mut at = now;
        while !remaining.is_empty() {
            let local = self.commit_group_local(&remaining, at)?;
            results.extend(local.settled);
            effects.merge(local.effects);
            // Batch-rejected members get their solo flush here — this
            // coordinator owns the GTM outright, so there is no lock to
            // release around the device round-trip.
            for sst in local.overflow {
                let txn = sst.origin;
                let (r, e) = self.solo_flush_settle(sst, at)?;
                effects.merge(e);
                results.push((txn, r));
            }
            let Some(batch) = local.batch else {
                // No batch ⇒ nothing parked ⇒ nothing deferred (the cut
                // only defers against parked members' estimates).
                debug_assert!(local.deferred.is_empty());
                break;
            };
            let mut flush = batch.execute(&self.db, &self.bindings);
            let mut attempts = 0;
            while attempts < self.config.sst_retries && matches!(flush, Err(PstmError::Io(_))) {
                attempts += 1;
                at += self.config.sst_retry_delay;
                self.tracer.emit(at, TraceEvent::SstRetry { txn: batch.leader, attempt: attempts });
                flush = batch.execute(&self.db, &self.bindings);
            }
            let fin = self.commit_group_finish(batch, flush, at)?;
            results.extend(fin.settled);
            effects.merge(fin.effects);
            for sst in fin.reflush {
                let txn = sst.origin;
                let (r, e) = self.solo_flush_settle(sst, at)?;
                effects.merge(e);
                results.push((txn, r));
            }
            remaining = local.deferred;
        }
        // Merge (not assign): fallback settles above already folded their
        // own busy time and spans into `effects`.
        let mut stamps = StepEffects::none();
        stamps.sst_busy = at.since(now);
        stamps.reconcile_span = Some((now, now));
        stamps.sst_span = Some((now, at));
        effects.merge(stamps);
        Ok((results, effects))
    }

    /// Phase one of a split group commit: the reconcile-and-park half of
    /// [`Gtm::commit_group`], for coordinators that must flush **outside**
    /// the lock protecting this GTM (the front-end's group-commit station
    /// releases the shard while the fused batch pays the device
    /// round-trip, so waiting committers can keep executing).
    ///
    /// Walks `txns` in arrival order: a member whose pre-reconcile write
    /// estimate ([`Gtm::mutated_resources`]) is disjoint from every
    /// already-parked member reconciles ([`Gtm::commit_local`]) and joins
    /// the fused batch; an overlapping member is **deferred** untouched —
    /// its reconciliation reads permanent state, so it must not run until
    /// the batch it overlaps has applied. Members that abort during
    /// reconciliation settle immediately.
    ///
    /// The caller owns the returned batch's members (they are parked in
    /// `Committing`) and MUST settle them with [`Gtm::commit_group_finish`]
    /// after attempting the flush — on the same GTM, before reconciling
    /// anything else on it. Deferred transactions stay fully active and
    /// can be resubmitted once the flush lands.
    pub fn commit_group_local(&mut self, txns: &[TxnId], now: Timestamp) -> PstmResult<GroupLocal> {
        let mut settled = Vec::new();
        let mut effects = StepEffects::none();
        let mut deferred = Vec::new();
        let mut overflow = Vec::new();
        let mut batch: Option<SstBatch> = None;
        let mut held: Vec<ResourceId> = Vec::new();
        for &txn in txns {
            let mutated = self.mutated_resources(txn);
            if mutated.iter().any(|r| held.contains(r)) {
                deferred.push(txn);
                continue;
            }
            match self.commit_local(txn, now)? {
                LocalCommit::Prepared(writes) => {
                    let sst = Sst::new(txn, writes);
                    match batch.as_mut() {
                        // Disjoint by construction: real writes are a
                        // subset of the mutating grants the cut used.
                        // Should the estimate ever lie, the member is
                        // handed back for a solo flush — never executed
                        // here, under the caller's lock.
                        Some(b) => {
                            if let Err(rejected) = b.push(sst) {
                                self.tracer.emit(
                                    now,
                                    TraceEvent::SstAttempt {
                                        txn,
                                        writes: rejected.writes.len() as u32,
                                    },
                                );
                                overflow.push(rejected);
                                held.extend(mutated);
                                continue;
                            }
                        }
                        None => batch = Some(SstBatch::of(sst)),
                    }
                    held.extend(mutated);
                }
                LocalCommit::Aborted(reason, e) => {
                    // An aborted member parks nothing: its resources are
                    // released, so it constrains no later member.
                    effects.merge(e);
                    settled.push((txn, CommitResult::Aborted(reason)));
                }
            }
        }
        if let Some(b) = &batch {
            for m in &b.members {
                self.tracer.emit(
                    now,
                    TraceEvent::SstAttempt { txn: m.origin, writes: m.writes.len() as u32 },
                );
            }
            self.tracer
                .emit(now, TraceEvent::GroupCommit { leader: b.leader, members: b.len() as u32 });
        }
        Ok(GroupLocal { settled, batch, deferred, overflow, effects })
    }

    /// Phase two of a split group commit: settles every member of `batch`
    /// according to the fused flush's outcome. `Ok` finishes all members;
    /// a constraint/type violation hands every member back as `reflush` —
    /// each is owed a solo flush (executed by the caller, outside the
    /// lock protecting this GTM) so only the violators abort; an I/O
    /// failure aborts all members with `SstFailure`. A `Crashed` flush
    /// propagates untouched — the simulated process is dead and the
    /// members' parked state dies with it, exactly as in the unbatched
    /// coordinated path.
    pub fn commit_group_finish(
        &mut self,
        batch: SstBatch,
        flush: PstmResult<()>,
        now: Timestamp,
    ) -> PstmResult<GroupFinish> {
        let mut settled = Vec::with_capacity(batch.len());
        let mut reflush = Vec::new();
        let mut effects = StepEffects::none();
        match flush {
            Ok(()) => {
                for m in &batch.members {
                    if !m.is_empty() {
                        self.tracer.emit(now, TraceEvent::SstApplied { txn: m.origin });
                    }
                    effects.merge(self.commit_finish(m.origin, now)?);
                    settled.push((m.origin, CommitResult::Committed));
                }
            }
            Err(PstmError::ConstraintViolation { .. }) | Err(PstmError::TypeMismatch { .. }) => {
                // Per-transaction abort unwind: some member's reconciled
                // value broke a constraint. Each member needs its own
                // flush to tell violator from victim — hand them back
                // rather than paying device round-trips under the lock.
                for m in batch.members {
                    self.tracer.emit(
                        now,
                        TraceEvent::SstAttempt { txn: m.origin, writes: m.writes.len() as u32 },
                    );
                    reflush.push(m);
                }
            }
            Err(PstmError::Io(_)) => {
                for m in &batch.members {
                    effects.merge(self.commit_abort(m.origin, AbortReason::SstFailure, now)?);
                    settled.push((m.origin, CommitResult::Aborted(AbortReason::SstFailure)));
                }
            }
            Err(e) => return Err(e),
        }
        Ok(GroupFinish { settled, reflush, effects })
    }

    /// Settles one parked member from the outcome of a **solo** flush the
    /// caller executed (the flush itself must run outside the lock
    /// protecting this GTM — see [`GroupLocal::overflow`] and
    /// [`GroupFinish::reflush`]). `Ok` finishes the member; a constraint
    /// or type violation aborts it with `Constraint`; an I/O failure
    /// aborts it with `SstFailure`; anything else propagates.
    pub fn commit_solo_finish(
        &mut self,
        sst: &Sst,
        flush: PstmResult<()>,
        now: Timestamp,
    ) -> PstmResult<(CommitResult, StepEffects)> {
        let txn = sst.origin;
        match flush {
            Ok(()) => {
                if !sst.is_empty() {
                    self.tracer.emit(now, TraceEvent::SstApplied { txn });
                }
                Ok((CommitResult::Committed, self.commit_finish(txn, now)?))
            }
            Err(PstmError::ConstraintViolation { .. }) | Err(PstmError::TypeMismatch { .. }) => {
                // §VII problem 2: reconciliation violated an integrity
                // constraint (or produced a value the column's declared
                // type rejects) — the transaction aborts.
                let reason = AbortReason::Constraint;
                Ok((CommitResult::Aborted(reason), self.commit_abort(txn, reason, now)?))
            }
            Err(PstmError::Io(_)) => {
                // Persistent SST failure: §VII's open problem. Nothing
                // reached the database (the write set is all-or-nothing),
                // so cleanup is pure bookkeeping.
                let reason = AbortReason::SstFailure;
                Ok((CommitResult::Aborted(reason), self.commit_abort(txn, reason, now)?))
            }
            Err(e) => Err(e),
        }
    }

    /// Phase one of a coordinated commit (Algorithm 3): moves the
    /// transaction to `Committing`, reconciles every touched resource and
    /// returns the writes the global commit must flush. On success the
    /// transaction is *parked* — the coordinator owns it until it calls
    /// [`Gtm::commit_finish`] (SST applied) or [`Gtm::commit_abort`] (SST
    /// failed). A local failure aborts the transaction immediately — it
    /// must never strand in `Committing`.
    pub fn commit_local(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<LocalCommit> {
        // The whole local commit is the reconcile phase; a failed commit's
        // unwind (abort_internal) carves out its own AbortUnwind time.
        let _phase = prof::PhaseTimer::start(CommitPhase::Reconcile);
        let record = self.txn_mut(txn)?;
        if record.state != TxnState::Active {
            return Err(PstmError::InvalidState {
                txn,
                action: "commit",
                state: record.state.name(),
            });
        }
        record.state = TxnState::Committing;
        let touched: Vec<(ResourceId, OpClass)> =
            record.classes.iter().map(|(r, c)| (*r, *c)).collect();

        // Local commits: move pending → committing, reconcile. Any error
        // here (a reconciliation overflow, an engine read failure) aborts
        // the transaction.
        let local_result: PstmResult<Vec<(ResourceId, Value)>> = (|| {
            self.fault_check(FaultSite::CommitLocal { shard: self.fault_shard }, now)?;
            let mut writes = Vec::new();
            for (resource, class) in &touched {
                // The paper's "link drops mid-reconcile": each resource's
                // reconciliation is a separate arrival at the seam.
                self.fault_check(FaultSite::Reconcile { shard: self.fault_shard }, now)?;
                let permanent = self.perm(*resource)?;
                let record = self.txns.get_mut(&txn).ok_or_else(|| {
                    PstmError::internal(format!("committing {txn} has no record"))
                })?;
                let temp = record.temp.remove(resource);
                let rs = self.resources.entry(*resource).or_default();
                rs.pending.remove(&txn);
                rs.committing.insert(txn, *class);
                let read = rs.read.remove(&txn);
                if class.is_mutation() {
                    let temp = temp.ok_or_else(|| {
                        PstmError::internal(format!("{txn} committing {resource} without temp"))
                    })?;
                    let read = read.ok_or_else(|| {
                        PstmError::internal(format!("{txn} committing {resource} without snapshot"))
                    })?;
                    if let Some(new) = reconcile(*class, &temp, &read, &permanent)? {
                        rs.new.insert(txn, new.clone());
                        writes.push((*resource, new));
                        self.tracer.emit(now, TraceEvent::Reconciled { txn, resource: *resource });
                    }
                }
            }
            Ok(writes)
        })();
        let reason = match local_result {
            Ok(writes) => return Ok(LocalCommit::Prepared(writes)),
            // Reconciliation failed in the value domain (overflow, zero
            // snapshot for mul/div, a result the column type rejects):
            // the transaction dies.
            Err(PstmError::Arithmetic(_)) | Err(PstmError::TypeMismatch { .. }) => {
                AbortReason::Constraint
            }
            Err(PstmError::Io(_)) => AbortReason::SstFailure,
            Err(e) => return Err(e),
        };
        let (_, mut effects) = self.finish_failed_commit(txn, &touched, reason, now)?;
        // Reconciliation ran (and failed) at `now`.
        effects.reconcile_span = Some((now, now));
        Ok(LocalCommit::Aborted(reason, effects))
    }

    /// Phase two (success) of a coordinated commit (Algorithm 4's tail):
    /// the coordinator's SST applied, so mark the transaction committed,
    /// record history and run promotions. Requires the transaction to be
    /// parked in `Committing` by a prior [`Gtm::commit_local`].
    pub fn commit_finish(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        // History, committed marks, promotions: bookkeeping.
        let _phase = prof::PhaseTimer::start(CommitPhase::OpBookkeeping);
        let record = self.txn_mut(txn)?;
        if record.state != TxnState::Committing {
            return Err(PstmError::InvalidState {
                txn,
                action: "commit-finish",
                state: record.state.name(),
            });
        }
        let touched: Vec<(ResourceId, OpClass)> =
            record.classes.iter().map(|(r, c)| (*r, *c)).collect();
        for (resource, class) in &touched {
            let rs = self.resources.entry(*resource).or_default();
            rs.committing.remove(&txn);
            rs.new.remove(&txn);
            rs.committed.push((txn, *class, now));
        }
        let record = self
            .txns
            .get_mut(&txn)
            .ok_or_else(|| PstmError::internal(format!("committing {txn} has no record")))?;
        record.state = TxnState::Committed;
        record.t_sleep = None;
        record.t_wait.clear();
        let ops = record.op_log.clone();
        self.history.record_commit(txn, ops);
        self.tracer.emit(now, TraceEvent::Committed { txn });
        self.promote_all(touched.iter().map(|(r, _)| *r).collect(), now)
    }

    /// Phase two (failure) of a coordinated commit: the coordinator's SST
    /// failed, so clear the committing marks and abort. Requires the
    /// transaction to be parked in `Committing` by a prior
    /// [`Gtm::commit_local`]. The transaction's own fate is *not* in the
    /// returned effects — the coordinator already knows it.
    pub fn commit_abort(
        &mut self,
        txn: TxnId,
        reason: AbortReason,
        now: Timestamp,
    ) -> PstmResult<StepEffects> {
        let record = self.txn_mut(txn)?;
        if record.state != TxnState::Committing {
            return Err(PstmError::InvalidState {
                txn,
                action: "commit-abort",
                state: record.state.name(),
            });
        }
        let touched: Vec<(ResourceId, OpClass)> =
            record.classes.iter().map(|(r, c)| (*r, *c)).collect();
        let (_, effects) = self.finish_failed_commit(txn, &touched, reason, now)?;
        Ok(effects)
    }

    /// Common tail of every failed global commit: clear the committing
    /// marks, abort the transaction, and report its fate through the
    /// return value rather than `StepEffects`.
    fn finish_failed_commit(
        &mut self,
        txn: TxnId,
        touched: &[(ResourceId, OpClass)],
        reason: AbortReason,
        now: Timestamp,
    ) -> PstmResult<(CommitResult, StepEffects)> {
        for (resource, _) in touched {
            let rs = self.resources.entry(*resource).or_default();
            rs.committing.remove(&txn);
            rs.new.remove(&txn);
        }
        let mut effects = self.abort_internal(txn, reason, AbortOrigin::Commit, now)?;
        effects.aborted.retain(|(t, _)| *t != txn);
        Ok((CommitResult::Aborted(reason), effects))
    }

    // ------------------------------------------------------------------
    // Algorithms 5–6: ⟨abort, X, A⟩ and ⟨abort, A⟩
    // ------------------------------------------------------------------

    /// User-requested abort. Nothing reached the database (virtual copies
    /// only), so abort is pure bookkeeping plus promotions.
    pub fn abort(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        self.abort_internal(txn, AbortReason::User, AbortOrigin::User, now)
    }

    fn abort_internal(
        &mut self,
        txn: TxnId,
        reason: AbortReason,
        origin: AbortOrigin,
        now: Timestamp,
    ) -> PstmResult<StepEffects> {
        let _phase = prof::PhaseTimer::start(CommitPhase::AbortUnwind);
        let record = self.txn_mut(txn)?;
        if record.state.is_terminal() {
            return Err(PstmError::InvalidState {
                txn,
                action: "abort",
                state: record.state.name(),
            });
        }
        record.state = TxnState::Aborting;
        let resources = record.resources();
        record.temp.clear();
        record.pending_op = None;
        for resource in &resources {
            let rs = self.resources.entry(*resource).or_default();
            rs.pending.remove(&txn);
            rs.waiting.retain(|w| w.txn != txn);
            rs.committing.remove(&txn);
            rs.sleeping.remove(&txn);
            rs.read.remove(&txn);
            rs.new.remove(&txn);
        }
        let record = self
            .txns
            .get_mut(&txn)
            .ok_or_else(|| PstmError::internal(format!("aborting {txn} has no record")))?;
        record.state = TxnState::Aborted;
        record.t_sleep = None;
        record.t_wait.clear();
        self.tracer.emit(now, TraceEvent::Aborted { txn, reason, origin });
        let mut effects = self.promote_all(resources, now)?;
        effects.aborted.push((txn, reason));
        Ok(effects)
    }

    // ------------------------------------------------------------------
    // Algorithms 7–8: ⟨sleep, X, A⟩ and ⟨sleep, A⟩
    // ------------------------------------------------------------------

    /// The oracle `Ξ` fired: `txn` disconnected or went idle. Its grants
    /// stop blocking other work (Algorithm 2 excludes `X_sleeping` from
    /// the conflict check), so sleeping can unblock queued waiters —
    /// promotions are returned.
    pub fn sleep(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        let record = self.txn_mut(txn)?;
        match record.state {
            TxnState::Active | TxnState::Waiting => {
                record.state = TxnState::Sleeping;
                record.t_sleep = Some(now);
                let resources = record.resources();
                for resource in &resources {
                    self.rs(*resource).sleeping.insert(txn);
                }
                self.tracer.emit(now, TraceEvent::TxnSlept { txn });
                self.promote_all(resources, now)
            }
            other => Err(PstmError::InvalidState { txn, action: "sleep", state: other.name() }),
        }
    }

    // ------------------------------------------------------------------
    // Algorithms 9–10: ⟨awake, X, A⟩ and ⟨awake, A⟩
    // ------------------------------------------------------------------

    /// The transaction reconnected. If no incompatible activity touched
    /// its resources while it slept (no conflicting pending/committing
    /// holder, no conflicting commit with `X_tc > A_t_sleep`), it resumes
    /// — a queued invocation is granted on the spot with a fresh snapshot
    /// (Algorithm 9, first branch). Otherwise it is aborted (third
    /// branch).
    pub fn awake(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(AwakeResult, StepEffects)> {
        let record = self.txn_mut(txn)?;
        if record.state != TxnState::Sleeping {
            return Err(PstmError::InvalidState {
                txn,
                action: "awake",
                state: record.state.name(),
            });
        }
        let t_sleep = record.t_sleep.unwrap_or(Timestamp::ZERO);
        let granted: Vec<(ResourceId, OpClass)> =
            record.classes.iter().map(|(r, c)| (*r, *c)).collect();
        let queued: Option<(ResourceId, ScalarOp)> = record.pending_op.clone();

        // Conflict scan over everything the transaction is involved in,
        // each check spanning the resource's logical dependence group.
        let matrix = self.config.compat;
        let check = |resource: ResourceId, class: OpClass| -> bool {
            self.dependence.related(resource).any(|sibling| {
                self.resources.get(&sibling).is_some_and(|rs| {
                    rs.conflicts_with_any_holder(txn, class, &matrix)
                        || rs.incompatible_commit_after(txn, class, t_sleep, &matrix)
                })
            })
        };
        let mut conflicted = granted.iter().any(|(r, c)| check(*r, *c));
        if !conflicted {
            if let Some((resource, op)) = &queued {
                conflicted = check(*resource, op.class());
            }
        }

        if conflicted {
            let mut effects =
                self.abort_internal(txn, AbortReason::SleepConflict, AbortOrigin::Awake, now)?;
            effects.aborted.retain(|(t, _)| *t != txn);
            return Ok((AwakeResult::Aborted, effects));
        }

        // No conflicts: clear the sleeping marks (Algorithm 9, second
        // branch) ...
        let resources = self.txns[&txn].resources();
        for resource in &resources {
            self.rs(*resource).sleeping.remove(&txn);
        }
        // ... and grant a queued invocation with a refreshed snapshot
        // (first branch: X_read^A = A_temp = X_permanent). The §VII
        // policies gate this grant like every other: if a policy denies
        // it, the invocation simply stays queued and the transaction
        // remains Waiting (it did reconnect — only its operation is
        // still pending).
        let mut value = None;
        if let Some((resource, op)) = queued {
            let class = op.class();
            if self.grant_denied(txn, resource, class, &op, now)? {
                let record = self
                    .txns
                    .get_mut(&txn)
                    .ok_or_else(|| PstmError::internal(format!("awaking {txn} has no record")))?;
                record.state = TxnState::Waiting;
                record.t_sleep = None;
                self.tracer.emit(now, TraceEvent::TxnAwoke { txn });
                return Ok((AwakeResult::Resumed(None), StepEffects::none()));
            }
            let rs = self.rs(resource);
            rs.waiting.retain(|w| w.txn != txn);
            let record = self
                .txns
                .get_mut(&txn)
                .ok_or_else(|| PstmError::internal(format!("awaking {txn} has no record")))?;
            record.pending_op = None;
            let is_upgrade = record.classes.get(&resource) == Some(&OpClass::Read);
            match self.grant(txn, resource, op, class, is_upgrade, now) {
                Ok(v) => value = Some(v),
                Err(PstmError::Arithmetic(_)) => {
                    // The stashed op failed on the fresh snapshot: the
                    // transaction dies cleanly instead of stranding
                    // half-awake.
                    let mut effects =
                        self.abort_internal(txn, AbortReason::Constraint, AbortOrigin::Awake, now)?;
                    effects.aborted.retain(|(t, _)| *t != txn);
                    return Ok((AwakeResult::Aborted, effects));
                }
                Err(e) => return Err(e),
            }
        }
        let record = self
            .txns
            .get_mut(&txn)
            .ok_or_else(|| PstmError::internal(format!("awaking {txn} has no record")))?;
        record.state = TxnState::Active;
        record.t_sleep = None;
        record.t_wait.clear();
        self.tracer.emit(now, TraceEvent::TxnAwoke { txn });
        Ok((AwakeResult::Resumed(value), StepEffects::none()))
    }

    // ------------------------------------------------------------------
    // Algorithm 11: ⟨unlock, X⟩ — promotion
    // ------------------------------------------------------------------

    /// Reconsiders the wait queues of `resources` after removals. FIFO
    /// with skip-over: grantable awake entries are granted (each on a
    /// fresh snapshot), sleeping and still-blocked entries stay queued.
    fn promote_all(
        &mut self,
        resources: BTreeSet<ResourceId>,
        now: Timestamp,
    ) -> PstmResult<StepEffects> {
        // A removal on one member can unblock waiters queued on a
        // logically dependent sibling — expand the scan to each
        // resource's dependence group.
        let resources: BTreeSet<ResourceId> = resources
            .into_iter()
            .flat_map(|r| self.dependence.related(r).collect::<Vec<_>>())
            .collect();
        let mut effects = StepEffects::none();
        for resource in resources {
            let mut idx = 0;
            while let Some(entry) =
                self.resources.get(&resource).and_then(|rs| rs.waiting.get(idx)).cloned()
            {
                let rs = self
                    .resources
                    .get(&resource)
                    .ok_or_else(|| PstmError::internal(format!("{resource} vanished mid-scan")))?;
                if rs.sleeping.contains(&entry.txn) {
                    idx += 1;
                    continue; // Algorithm 11: X_waiting − X_sleeping
                }
                let mut denied = self.blocked(entry.txn, resource, entry.class);
                if !denied {
                    // Admission still applies at promotion time. Not
                    // counted in `admission_denials`: promotion re-runs on
                    // every tick, so counting re-evaluations of the same
                    // queued op would swamp the stat with polling noise —
                    // the counter tracks denied *invocations*.
                    denied = self.admission_denies(entry.txn, resource, &entry.op)?;
                }
                if !denied {
                    // Starvation control also applies: skip-over
                    // promotion must not carry a compatible entry past
                    // `deny_threshold` awake incompatible waiters queued
                    // ahead of it, or the lock-deny of Algorithm 2 would
                    // be undone at every unlock.
                    if let Some(p) = self.config.starvation {
                        let rs = self.resources.get(&resource).ok_or_else(|| {
                            PstmError::internal(format!("{resource} vanished mid-scan"))
                        })?;
                        let incompatible_ahead = rs
                            .waiting
                            .iter()
                            .take(idx)
                            .filter(|w| !rs.sleeping.contains(&w.txn))
                            .filter(|w| !self.config.compat.compatible(entry.class, w.class))
                            .count();
                        if p.deny(incompatible_ahead) {
                            self.tracer.emit(
                                now,
                                TraceEvent::StarvationDenied { txn: entry.txn, resource },
                            );
                            denied = true;
                        }
                    }
                }
                if denied {
                    if self.config.elder_priority {
                        break; // strict FIFO: nothing may overtake a blocked elder
                    }
                    idx += 1;
                    continue;
                }
                // Grant it.
                let rs = self
                    .resources
                    .get_mut(&resource)
                    .ok_or_else(|| PstmError::internal(format!("{resource} vanished mid-scan")))?;
                rs.waiting.remove(idx);
                let record = self.txns.get_mut(&entry.txn).ok_or_else(|| {
                    PstmError::internal(format!("waiting {} has no record", entry.txn))
                })?;
                record.pending_op = None;
                match self.grant(entry.txn, resource, entry.op, entry.class, entry.is_upgrade, now)
                {
                    Ok(value) => {
                        let record = self.txns.get_mut(&entry.txn).ok_or_else(|| {
                            PstmError::internal(format!("granted {} has no record", entry.txn))
                        })?;
                        if record.state == TxnState::Waiting {
                            record.state = TxnState::Active;
                        }
                        effects.resumed.push((entry.txn, value));
                    }
                    Err(PstmError::Arithmetic(_)) => {
                        // The stashed op failed on the fresh snapshot
                        // (e.g. divide by a value that became zero): the
                        // transaction dies.
                        effects.merge(self.abort_internal(
                            entry.txn,
                            AbortReason::Constraint,
                            AbortOrigin::Promotion,
                            now,
                        )?);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(effects)
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Builds the waits-for graph: each awake waiter → every blocking
    /// holder its class conflicts with, spanning logical dependence
    /// groups.
    #[must_use]
    pub fn waits_for_graph(&self) -> WaitsForGraph {
        let mut g = WaitsForGraph::new();
        for (resource, rs) in &self.resources {
            for w in &rs.waiting {
                if rs.sleeping.contains(&w.txn) {
                    continue;
                }
                for sibling in self.dependence.related(*resource) {
                    let Some(srs) = self.resources.get(&sibling) else { continue };
                    for (holder, class) in srs
                        .pending
                        .iter()
                        .filter(|(t, _)| !srs.sleeping.contains(t))
                        .chain(srs.committing.iter())
                    {
                        if *holder != w.txn && !self.config.compat.compatible(w.class, *class) {
                            g.add_edge(w.txn, *holder);
                        }
                    }
                }
            }
        }
        g
    }

    /// The current waits-for graph rendered as Graphviz DOT — a debugging
    /// artifact (`dot -Tsvg`) showing who blocks whom right now.
    #[must_use]
    pub fn waits_for_dot(&self) -> String {
        pstm_obs::waits_for_dot(self.waits_for_graph().edges())
    }

    /// Periodic maintenance: deadlock detection, wait timeouts, committed
    /// set pruning. The simulator calls this on clock advances.
    pub fn tick(&mut self, now: Timestamp) -> PstmResult<StepEffects> {
        let mut effects = StepEffects::none();
        if self.config.deadlock_detection {
            while let Some((victim, cycle)) = self.waits_for_graph().pick_victim() {
                self.tracer.emit(now, TraceEvent::DeadlockVictim { txn: victim, cycle });
                effects.merge(self.abort_internal(
                    victim,
                    AbortReason::Deadlock,
                    AbortOrigin::Tick,
                    now,
                )?);
            }
        }
        if let Some(timeout) = self.config.wait_timeout {
            let expired: Vec<TxnId> = self
                .resources
                .values()
                .flat_map(|rs| rs.waiting.iter())
                .filter(|w| now.since(w.since) >= timeout)
                .map(|w| w.txn)
                .collect();
            for t in expired {
                // Re-check per abort: an earlier victim's release may have
                // promoted this waiter already — an Active transaction
                // must not be killed by a stale expiry list.
                if self.txns.get(&t).is_some_and(|r| r.state == TxnState::Waiting) {
                    effects.merge(self.abort_internal(
                        t,
                        AbortReason::LockTimeout,
                        AbortOrigin::Tick,
                        now,
                    )?);
                }
            }
        }
        // Admission-denied waiters can be stalled on an otherwise idle
        // resource (no removal event will ever re-trigger promotion, but
        // the resource value may have changed); re-run promotion over
        // every resource with a queue.
        let queued: BTreeSet<ResourceId> = self
            .resources
            .iter()
            .filter(|(_, rs)| !rs.waiting.is_empty())
            .map(|(r, _)| *r)
            .collect();
        if !queued.is_empty() {
            effects.merge(self.promote_all(queued, now)?);
        }
        // Prune committed sets below the horizon any sleeper can observe.
        let horizon = self
            .txns
            .values()
            .filter(|r| r.state == TxnState::Sleeping)
            .filter_map(|r| r.t_sleep)
            .min()
            .unwrap_or(now);
        for rs in self.resources.values_mut() {
            rs.prune_committed(horizon);
        }
        Ok(effects)
    }

    /// The earliest instant at which [`Gtm::tick`] has scheduled work to
    /// do for a *currently queued* waiter: the oldest wait entry's
    /// `since + wait_timeout`. `None` when nothing is waiting or wait
    /// timeouts are disabled — an event-driven caller (the reactor
    /// front-end) then needs no timer for this shard at all, where the
    /// blocking front-end would poll it on every `poll_interval`.
    ///
    /// Deadlock detection and promotion have no deadline of their own:
    /// both are re-run on every tick, so an event-driven caller should
    /// tick at `min(next_wake_deadline, its own coarse cadence)` while
    /// waiters exist.
    #[must_use]
    pub fn next_wake_deadline(&self) -> Option<Timestamp> {
        let timeout = self.config.wait_timeout?;
        self.resources
            .values()
            .flat_map(|rs| rs.waiting.iter())
            .map(|w| Timestamp(w.since.0.saturating_add(timeout.0)))
            .min()
    }

    /// True while any transaction is queued on any resource — the
    /// condition under which an event-driven caller keeps a tick timer
    /// armed for this shard.
    #[must_use]
    pub fn has_waiters(&self) -> bool {
        self.resources.values().any(|rs| !rs.waiting.is_empty())
    }

    /// Test/diagnostic access to a resource's scheduling state.
    #[must_use]
    pub fn resource_state(&self, resource: ResourceId) -> Option<&ResourceState> {
        self.resources.get(&resource)
    }

    /// Verifies the cross-structure bookkeeping invariants of the manager;
    /// returns a description of the first violation. Used by the fuzz
    /// tests after every event.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (resource, rs) in &self.resources {
            for t in rs.pending.keys() {
                let Some(rec) = self.txns.get(t) else {
                    return Err(format!("{t} pending on {resource} but unknown"));
                };
                if rec.state.is_terminal() {
                    return Err(format!(
                        "{t} pending on {resource} in terminal state {}",
                        rec.state
                    ));
                }
                if !rec.classes.contains_key(resource) {
                    return Err(format!("{t} pending on {resource} without a recorded class"));
                }
                if !rs.read.contains_key(t) {
                    return Err(format!("{t} pending on {resource} without X_read snapshot"));
                }
            }
            for w in &rs.waiting {
                let Some(rec) = self.txns.get(&w.txn) else {
                    return Err(format!("{} waiting on {resource} but unknown", w.txn));
                };
                if !matches!(rec.state, TxnState::Waiting | TxnState::Sleeping) {
                    return Err(format!(
                        "{} queued on {resource} but in state {}",
                        w.txn, rec.state
                    ));
                }
                match &rec.pending_op {
                    Some((r, _)) if r == resource => {}
                    other => {
                        return Err(format!(
                            "{} queued on {resource} but pending_op is {other:?}",
                            w.txn
                        ));
                    }
                }
            }
            for t in &rs.sleeping {
                let Some(rec) = self.txns.get(t) else {
                    return Err(format!("{t} sleeping on {resource} but unknown"));
                };
                if rec.state != TxnState::Sleeping {
                    return Err(format!("{t} in X_sleeping of {resource} but state {}", rec.state));
                }
            }
            if !rs.committing.is_empty() {
                return Err(format!("{resource} has a non-empty committing set between events"));
            }
        }
        for (t, rec) in &self.txns {
            match rec.state {
                TxnState::Active | TxnState::Sleeping => {
                    for resource in rec.classes.keys() {
                        let held = self
                            .resources
                            .get(resource)
                            .is_some_and(|rs| rs.pending.contains_key(t));
                        if !held {
                            return Err(format!(
                                "{t} records class on {resource} but is not pending"
                            ));
                        }
                    }
                }
                TxnState::Waiting => {
                    if rec.pending_op.is_none() {
                        return Err(format!("{t} Waiting without a pending op"));
                    }
                }
                TxnState::Committed | TxnState::Aborted => {
                    for (resource, rs) in &self.resources {
                        if rs.pending.contains_key(t)
                            || rs.sleeping.contains(t)
                            || rs.waiting.iter().any(|w| w.txn == *t)
                            || rs.read.contains_key(t)
                            || rs.new.contains_key(t)
                        {
                            return Err(format!("terminal {t} still referenced by {resource}"));
                        }
                    }
                }
                TxnState::Committing | TxnState::Aborting => {
                    return Err(format!(
                        "{t} left in transient state {} between events",
                        rec.state
                    ));
                }
            }
        }
        Ok(())
    }
}
