//! Reconciliation algorithms — Definition 1's condition 3 and the paper's
//! equations (1) and (2).
//!
//! When compatible transactions share a data member, each mutates only its
//! virtual copy `A_temp` (seeded from the snapshot `X_read`). At local
//! commit the middleware must fold the transaction's *delta* into the
//! *current* permanent value, which concurrent compatible committers may
//! have moved since the snapshot:
//!
//! * additive class (eq. 1): `X_new = A_temp + X_permanent − X_read`
//! * multiplicative class (eq. 2): `X_new = (A_temp / X_read) · X_permanent`
//! * assignment: no concurrent mutator can exist (Table I), so
//!   `X_new = A_temp` verbatim;
//! * read: nothing to write.

use pstm_types::{OpClass, PstmError, PstmResult, Value};

/// Computes `X_new` for a transaction of class `class` with virtual copy
/// `temp`, snapshot `read`, against the current `permanent` value.
///
/// # Example — the paper's Table II
///
/// ```
/// use pstm_core::reconcile::reconcile;
/// use pstm_types::{OpClass, Value};
///
/// // A accumulated +4 on a snapshot of 100; B already committed 104.
/// let x_new = reconcile(
///     OpClass::UpdateAddSub,
///     &Value::Int(102),   // B_temp
///     &Value::Int(100),   // X_read^B
///     &Value::Int(104),   // X_permanent after A's commit
/// ).unwrap();
/// assert_eq!(x_new, Some(Value::Int(106)));
/// ```
///
/// Returns `Ok(None)` for `Read` (nothing to write back). `Insert` and
/// `Delete` have no scalar reconciliation and are rejected here — the GTM
/// handles them structurally.
pub fn reconcile(
    class: OpClass,
    temp: &Value,
    read: &Value,
    permanent: &Value,
) -> PstmResult<Option<Value>> {
    match class {
        OpClass::Read => Ok(None),
        OpClass::UpdateAssign => Ok(Some(temp.clone())),
        OpClass::UpdateAddSub => {
            // eq. (1): temp + permanent - read
            let v = temp.checked_add(permanent)?.checked_sub(read)?;
            Ok(Some(v))
        }
        OpClass::UpdateMulDiv => {
            // eq. (2): temp / read * permanent, fused so the rational
            // arithmetic stays exact: evaluating the ratio first promotes
            // any inexact Int/Int division to float and the result no
            // longer fits the Int column it came from. Guard the zero
            // snapshot: a mul/div transaction whose snapshot was 0 cannot
            // express its factor (0·c = 0) — the paper implicitly assumes
            // a nonzero base; we surface it as an arithmetic error.
            if matches!(read, Value::Int(0)) || matches!(read, Value::Float(f) if *f == 0.0) {
                return Err(PstmError::arithmetic(format!(
                    "mul/div reconciliation against zero snapshot: {temp} / {read}"
                )));
            }
            let v = temp.checked_mul_div(permanent, read)?;
            Ok(Some(v))
        }
        OpClass::Insert | OpClass::Delete => {
            Err(PstmError::internal(format!("no scalar reconciliation for {class}")))
        }
    }
}

/// True when the reconciled result of two concurrent same-class
/// transactions is independent of their commit order — the property that
/// makes the GTM's schedules serializable. Exposed for property tests.
pub fn commutes(class: OpClass) -> bool {
    matches!(class, OpClass::UpdateAddSub | OpClass::UpdateMulDiv | OpClass::Read)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_two_trace() {
        // Paper Table II: X starts at 100. A does +1 then +3 (temp 104);
        // B does +2 (temp 102). A commits first: X_new^A = 104 + 100 - 100
        // = 104. Then B: X_new^B = 102 + 104 - 100 = 106.
        let x0 = Value::Int(100);
        let a_temp = Value::Int(104);
        let b_temp = Value::Int(102);

        let a_new = reconcile(OpClass::UpdateAddSub, &a_temp, &x0, &x0).unwrap().unwrap();
        assert_eq!(a_new, Value::Int(104));
        let b_new = reconcile(OpClass::UpdateAddSub, &b_temp, &x0, &a_new).unwrap().unwrap();
        assert_eq!(b_new, Value::Int(106));
    }

    #[test]
    fn additive_order_independence() {
        // Reversing the commit order gives the same final value.
        let x0 = Value::Int(100);
        let a_temp = Value::Int(104);
        let b_temp = Value::Int(102);
        let b_new = reconcile(OpClass::UpdateAddSub, &b_temp, &x0, &x0).unwrap().unwrap();
        let a_new = reconcile(OpClass::UpdateAddSub, &a_temp, &x0, &b_new).unwrap().unwrap();
        assert_eq!(a_new, Value::Int(106));
    }

    #[test]
    fn multiplicative_reconciliation() {
        // A multiplies by 3 (temp 300 from snapshot 100); meanwhile the
        // permanent value moved to 200 (a compatible ×2 committed).
        // eq. 2: 300/100 · 200 = 600.
        let new =
            reconcile(OpClass::UpdateMulDiv, &Value::Int(300), &Value::Int(100), &Value::Int(200))
                .unwrap()
                .unwrap();
        assert_eq!(new, Value::Int(600));
    }

    #[test]
    fn multiplicative_reconciliation_stays_integral_with_inexact_ratio() {
        // A halves X (temp 50 from snapshot 100); a compatible ×3 committed
        // meanwhile (permanent 300). The ratio 50/100 is inexact in the
        // integers, but eq. 2 as a whole is: 50 · 300 / 100 = 150. The old
        // ratio-first evaluation produced Float(150.0), which an Int column
        // rejects at SST time.
        let new =
            reconcile(OpClass::UpdateMulDiv, &Value::Int(50), &Value::Int(100), &Value::Int(300))
                .unwrap()
                .unwrap();
        assert_eq!(new, Value::Int(150));
    }

    #[test]
    fn assignment_writes_temp_verbatim() {
        let new =
            reconcile(OpClass::UpdateAssign, &Value::Int(42), &Value::Int(100), &Value::Int(100))
                .unwrap()
                .unwrap();
        assert_eq!(new, Value::Int(42));
    }

    #[test]
    fn read_reconciles_to_nothing() {
        assert_eq!(
            reconcile(OpClass::Read, &Value::Int(1), &Value::Int(1), &Value::Int(9)).unwrap(),
            None
        );
    }

    #[test]
    fn insert_delete_rejected() {
        for c in [OpClass::Insert, OpClass::Delete] {
            assert!(reconcile(c, &Value::Int(1), &Value::Int(1), &Value::Int(1)).is_err());
        }
    }

    #[test]
    fn zero_snapshot_muldiv_is_an_error() {
        assert!(reconcile(OpClass::UpdateMulDiv, &Value::Int(0), &Value::Int(0), &Value::Int(5))
            .is_err());
    }

    proptest! {
        /// eq. (1): for any pair of additive transactions, reconciled
        /// commit order does not matter and equals the serial result.
        #[test]
        fn prop_additive_equals_serial(
            x0 in -1_000i64..1_000,
            da in -100i64..100,
            db in -100i64..100,
        ) {
            let x0v = Value::Int(x0);
            let a_temp = Value::Int(x0 + da);
            let b_temp = Value::Int(x0 + db);
            // A then B.
            let a_new = reconcile(OpClass::UpdateAddSub, &a_temp, &x0v, &x0v).unwrap().unwrap();
            let ab = reconcile(OpClass::UpdateAddSub, &b_temp, &x0v, &a_new).unwrap().unwrap();
            // B then A.
            let b_new = reconcile(OpClass::UpdateAddSub, &b_temp, &x0v, &x0v).unwrap().unwrap();
            let ba = reconcile(OpClass::UpdateAddSub, &a_temp, &x0v, &b_new).unwrap().unwrap();
            prop_assert_eq!(ab.clone(), ba);
            prop_assert_eq!(ab, Value::Int(x0 + da + db));
        }

        /// eq. (2): multiplicative transactions likewise commute
        /// (checked in floats to avoid integer-exactness artifacts).
        #[test]
        fn prop_multiplicative_commutes(
            x0 in prop::sample::select(vec![1.0f64, 2.0, 10.0, 100.0, -3.0]),
            fa in prop::sample::select(vec![0.5f64, 2.0, 3.0, 0.25, 1.5]),
            fb in prop::sample::select(vec![0.5f64, 2.0, 4.0, 0.75, 1.25]),
        ) {
            let x0v = Value::Float(x0);
            let a_temp = Value::Float(x0 * fa);
            let b_temp = Value::Float(x0 * fb);
            let a_new = reconcile(OpClass::UpdateMulDiv, &a_temp, &x0v, &x0v).unwrap().unwrap();
            let ab = reconcile(OpClass::UpdateMulDiv, &b_temp, &x0v, &a_new).unwrap().unwrap();
            let b_new = reconcile(OpClass::UpdateMulDiv, &b_temp, &x0v, &x0v).unwrap().unwrap();
            let ba = reconcile(OpClass::UpdateMulDiv, &a_temp, &x0v, &b_new).unwrap().unwrap();
            let (ab, ba) = (ab.as_f64().unwrap(), ba.as_f64().unwrap());
            prop_assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0));
            let serial = x0 * fa * fb;
            prop_assert!((ab - serial).abs() <= 1e-9 * serial.abs().max(1.0));
        }

        /// Every class Table I marks self-compatible commutes under
        /// reconciliation.
        #[test]
        fn prop_self_compatible_classes_commute(class in prop::sample::select(
            pstm_types::OpClass::ALL.to_vec()
        )) {
            if class.compatible_with(class) {
                prop_assert!(commutes(class));
            }
        }
    }
}
