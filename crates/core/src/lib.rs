//! `pstm-core` — the paper's contribution: the Global Transaction Manager
//! (GTM) implementing *pre-serialization of long running transactions*.
//!
//! The GTM is a hybrid optimistic/pessimistic scheduler:
//!
//! * invocations declare a semantic **operation class** (Table I); classes
//!   that forward-commute (Weihl) share the same object data member
//!   concurrently, each on a private **virtual copy** (`A_temp` with
//!   snapshot `X_read`) — [`state`];
//! * at commit the virtual copies are **reconciled** against the current
//!   permanent value (eqs. 1–2) — [`reconcile`] — and flushed by a
//!   **Secure System Transaction** (a short classical transaction against
//!   the LDBS) — [`sst`];
//! * disconnected/idle transactions become **sleeping** instead of
//!   aborted; incompatible work may bypass them, and a sleeper that wakes
//!   to find incompatible activity is aborted (Algorithm 9) — [`gtm`];
//! * committed histories can be checked for final-state serializability —
//!   [`history`];
//! * the §VII extensions are implemented behind configuration:
//!   starvation control (lock-deny past a waiting threshold) and
//!   admission control (bounding concurrent compatible holders by the
//!   resource value) — [`policy`].
//!
//! The event surface ([`gtm::Gtm`]) mirrors the 2PL baseline so the
//! simulator drives either interchangeably.

#![warn(missing_docs)]

pub mod dependence;
pub mod gtm;
pub mod history;
pub mod policy;
pub mod reconcile;
pub mod sst;
pub mod state;

pub use dependence::DependenceMap;
pub use gtm::{CommitResult, Gtm, GtmConfig, GtmStats, LocalCommit};
pub use policy::{AdmissionPolicy, StarvationPolicy};
pub use sst::Sst;
pub use state::TxnState;
