//! Transaction and resource state — the paper's §IV model.
//!
//! A transaction's global state is `(A_state, A_temp, A_t_sleep,
//! A_t_wait)`; each object data member (resource) tracks the sets
//! `X_pending`, `X_waiting`, `X_committing`, `X_committed` (with commit
//! times `X_tc`), `X_aborting`, `X_sleeping`, plus the per-transaction
//! values `X_read` and `X_new`. `X_permanent` itself lives in the LDBS.

use pstm_types::{CompatMatrix, OpClass, ScalarOp, Timestamp, TxnId, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The operating states of §IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnState {
    /// Normally running.
    Active,
    /// Waiting for a grant on some resource.
    Waiting,
    /// Inactive (disconnected or idle) past the sleep threshold.
    Sleeping,
    /// Commit requested; the SST has not yet finished.
    Committing,
    /// Abort requested; per-resource aborts still propagating.
    Aborting,
    /// Job performed.
    Committed,
    /// Job abandoned.
    Aborted,
}

impl TxnState {
    /// Short name for error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TxnState::Active => "active",
            TxnState::Waiting => "waiting",
            TxnState::Sleeping => "sleeping",
            TxnState::Committing => "committing",
            TxnState::Aborting => "aborting",
            TxnState::Committed => "committed",
            TxnState::Aborted => "aborted",
        }
    }

    /// Whether the transaction has reached a terminal state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, TxnState::Committed | TxnState::Aborted)
    }
}

impl fmt::Display for TxnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-transaction record: the paper's `A_state`, `A_temp`, `A_t_sleep`,
/// `A_t_wait`, plus bookkeeping the algorithms need (which resources the
/// transaction touched, its class per resource, the stashed waiting op).
#[derive(Clone, Debug)]
pub struct TxnRecord {
    /// `A_state`.
    pub state: TxnState,
    /// `A_temp` — the virtual copy per resource.
    pub temp: BTreeMap<pstm_types::ResourceId, Value>,
    /// The operation class in force per resource (constraint (i): all of
    /// a transaction's ops on one member must be mutually compatible).
    pub classes: BTreeMap<pstm_types::ResourceId, OpClass>,
    /// `A_t_sleep` — when the transaction went to sleep.
    pub t_sleep: Option<Timestamp>,
    /// `A_t_wait` — arrival time in each resource's wait queue.
    pub t_wait: BTreeMap<pstm_types::ResourceId, Timestamp>,
    /// The operation stashed while waiting (at most one outstanding
    /// invocation — §IV well-formedness).
    pub pending_op: Option<(pstm_types::ResourceId, ScalarOp)>,
    /// Every op the transaction executed, in order, for the history
    /// recorder (kept small: class + op per resource).
    pub op_log: Vec<(pstm_types::ResourceId, ScalarOp)>,
    /// When the transaction began (for stats).
    pub began_at: Timestamp,
}

impl TxnRecord {
    /// Fresh record in the `Active` state (Algorithm 1's postcondition).
    #[must_use]
    pub fn new(now: Timestamp) -> Self {
        TxnRecord {
            state: TxnState::Active,
            temp: BTreeMap::new(),
            classes: BTreeMap::new(),
            t_sleep: None,
            t_wait: BTreeMap::new(),
            pending_op: None,
            op_log: Vec::new(),
            began_at: now,
        }
    }

    /// Every resource this transaction is involved with (granted or
    /// waiting).
    #[must_use]
    pub fn resources(&self) -> BTreeSet<pstm_types::ResourceId> {
        let mut r: BTreeSet<_> = self.classes.keys().copied().collect();
        if let Some((res, _)) = &self.pending_op {
            r.insert(*res);
        }
        r
    }
}

/// A queued invocation: `(A, op)` plus the arrival time `A_t_wait`.
#[derive(Clone, Debug)]
pub struct WaitEntry {
    /// The waiting transaction.
    pub txn: TxnId,
    /// Class of the queued invocation.
    pub class: OpClass,
    /// The concrete stashed operation.
    pub op: ScalarOp,
    /// Arrival time in the queue.
    pub since: Timestamp,
    /// True when the transaction already holds the resource under a
    /// weaker class (Read) and is strengthening — granted with front
    /// priority like a 2PL upgrade.
    pub is_upgrade: bool,
}

/// Per-resource state: the paper's object state minus `X_permanent`
/// (which lives in the LDBS).
#[derive(Clone, Debug, Default)]
pub struct ResourceState {
    /// `X_pending` — transactions granted the resource, with their class.
    pub pending: BTreeMap<TxnId, OpClass>,
    /// `X_waiting` — queued invocations, FIFO.
    pub waiting: VecDeque<WaitEntry>,
    /// `X_committing`.
    pub committing: BTreeMap<TxnId, OpClass>,
    /// `X_committed` with `X_tc` commit times. Pruned lazily: entries are
    /// only needed while some transaction sleeps from before the commit.
    /// (`X_aborting` has no persistent representation: aborts complete
    /// synchronously within one event, so the set would always be empty
    /// between events.)
    pub committed: Vec<(TxnId, OpClass, Timestamp)>,
    /// `X_sleeping` — transactions operating on X that are asleep.
    pub sleeping: BTreeSet<TxnId>,
    /// `X_read` — per-transaction snapshot of `X_permanent` at grant.
    pub read: BTreeMap<TxnId, Value>,
    /// `X_new` — per-transaction reconciled value awaiting the SST.
    pub new: BTreeMap<TxnId, Value>,
}

impl ResourceState {
    /// Whether `class` conflicts (Definition 2) with any *blocking*
    /// holder under `matrix`: a pending, non-sleeping transaction or a
    /// committing one. Sleeping holders are deliberately excluded
    /// (Algorithm 2) — that is the mechanism that lets incompatible work
    /// bypass disconnected transactions.
    #[must_use]
    pub fn conflicts_with_blockers(
        &self,
        txn: TxnId,
        class: OpClass,
        matrix: &CompatMatrix,
    ) -> bool {
        self.blocking_conflicts(txn, class, matrix).next().is_some()
    }

    /// The blocking holders `class` conflicts with under `matrix`.
    pub fn blocking_conflicts<'a>(
        &'a self,
        txn: TxnId,
        class: OpClass,
        matrix: &'a CompatMatrix,
    ) -> impl Iterator<Item = (TxnId, OpClass)> + 'a {
        let pending =
            self.pending.iter().filter(move |(t, _)| **t != txn && !self.sleeping.contains(t));
        let committing = self.committing.iter().filter(move |(t, _)| **t != txn);
        pending
            .chain(committing)
            .filter(move |(_, c)| !matrix.compatible(class, **c))
            .map(|(t, c)| (*t, *c))
    }

    /// Whether `class` conflicts with *any* pending or committing holder
    /// under `matrix`, sleeping included — the stricter check Algorithm 9
    /// applies when a sleeper awakes.
    #[must_use]
    pub fn conflicts_with_any_holder(
        &self,
        txn: TxnId,
        class: OpClass,
        matrix: &CompatMatrix,
    ) -> bool {
        self.pending
            .iter()
            .chain(self.committing.iter())
            .any(|(t, c)| *t != txn && !matrix.compatible(class, *c))
    }

    /// Whether any transaction committed on this resource after `since`
    /// with a class incompatible with `class` under `matrix` (Algorithm
    /// 9's `X_tc > A_t_sleep` check).
    #[must_use]
    pub fn incompatible_commit_after(
        &self,
        txn: TxnId,
        class: OpClass,
        since: Timestamp,
        matrix: &CompatMatrix,
    ) -> bool {
        self.committed
            .iter()
            .any(|(t, c, tc)| *t != txn && *tc > since && !matrix.compatible(class, *c))
    }

    /// Drops committed-set entries no longer observable by any sleeper:
    /// entries older than `horizon` (the earliest `t_sleep` among live
    /// sleepers, or "now" when none sleep).
    pub fn prune_committed(&mut self, horizon: Timestamp) {
        self.committed.retain(|(_, _, tc)| *tc > horizon);
    }

    /// Whether the resource is completely idle (reusable for unlock
    /// bookkeeping and tests).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.waiting.is_empty()
            && self.committing.is_empty()
            && self.new.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_types::{ObjectId, ResourceId};

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn states_classify() {
        assert!(TxnState::Committed.is_terminal());
        assert!(TxnState::Aborted.is_terminal());
        assert!(!TxnState::Sleeping.is_terminal());
        assert_eq!(TxnState::Committing.name(), "committing");
    }

    #[test]
    fn sleeping_holders_do_not_block_but_committing_do() {
        let m = CompatMatrix::paper();
        let mut rs = ResourceState::default();
        rs.pending.insert(t(1), OpClass::UpdateAddSub);
        // An assignment conflicts with the pending add/sub holder.
        assert!(rs.conflicts_with_blockers(t(2), OpClass::UpdateAssign, &m));
        // ... but not once the holder sleeps (Algorithm 2's exclusion).
        rs.sleeping.insert(t(1));
        assert!(!rs.conflicts_with_blockers(t(2), OpClass::UpdateAssign, &m));
        // The awake-time check still sees it.
        assert!(rs.conflicts_with_any_holder(t(2), OpClass::UpdateAssign, &m));
        // Committing transactions always block.
        rs.committing.insert(t(3), OpClass::UpdateAssign);
        assert!(rs.conflicts_with_blockers(t(2), OpClass::UpdateAddSub, &m));
        // A stricter matrix changes the verdicts consistently.
        let strict = CompatMatrix::read_write_only();
        let mut rs3 = ResourceState::default();
        rs3.pending.insert(t(1), OpClass::UpdateAddSub);
        assert!(rs3.conflicts_with_blockers(t(2), OpClass::UpdateAddSub, &strict));
        assert!(!rs3.conflicts_with_blockers(t(2), OpClass::UpdateAddSub, &m));
    }

    #[test]
    fn own_entries_never_conflict() {
        let m = CompatMatrix::paper();
        let mut rs = ResourceState::default();
        rs.pending.insert(t(1), OpClass::UpdateAssign);
        assert!(!rs.conflicts_with_blockers(t(1), OpClass::UpdateAssign, &m));
        assert!(!rs.conflicts_with_any_holder(t(1), OpClass::UpdateAssign, &m));
    }

    #[test]
    fn committed_after_sleep_detected() {
        let m = CompatMatrix::paper();
        let mut rs = ResourceState::default();
        rs.committed.push((t(1), OpClass::UpdateAssign, Timestamp::from_millis(100)));
        let class = OpClass::UpdateAddSub;
        assert!(rs.incompatible_commit_after(t(2), class, Timestamp::from_millis(50), &m));
        assert!(
            !rs.incompatible_commit_after(t(2), class, Timestamp::from_millis(100), &m),
            "commit at exactly t_sleep is not after it"
        );
        // Compatible commits never trigger.
        let mut rs2 = ResourceState::default();
        rs2.committed.push((t(1), OpClass::UpdateAddSub, Timestamp::from_millis(100)));
        assert!(!rs2.incompatible_commit_after(t(2), class, Timestamp::ZERO, &m));
        // One's own commit never triggers.
        assert!(!rs.incompatible_commit_after(t(1), class, Timestamp::ZERO, &m));
    }

    #[test]
    fn prune_committed_respects_horizon() {
        let mut rs = ResourceState::default();
        rs.committed.push((t(1), OpClass::Read, Timestamp::from_millis(10)));
        rs.committed.push((t(2), OpClass::Read, Timestamp::from_millis(20)));
        rs.prune_committed(Timestamp::from_millis(15));
        assert_eq!(rs.committed.len(), 1);
        assert_eq!(rs.committed[0].0, t(2));
    }

    #[test]
    fn txn_record_tracks_resources() {
        let mut rec = TxnRecord::new(Timestamp::ZERO);
        let r1 = ResourceId::atomic(ObjectId(1));
        let r2 = ResourceId::atomic(ObjectId(2));
        rec.classes.insert(r1, OpClass::Read);
        rec.pending_op = Some((r2, ScalarOp::Read));
        let resources = rec.resources();
        assert!(resources.contains(&r1) && resources.contains(&r2));
        assert_eq!(rec.state, TxnState::Active);
    }

    #[test]
    fn idle_resource_detection() {
        let mut rs = ResourceState::default();
        assert!(rs.is_idle());
        rs.pending.insert(t(1), OpClass::Read);
        assert!(!rs.is_idle());
    }
}
