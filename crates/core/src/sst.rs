//! Secure System Transactions.
//!
//! At global commit the GTM owns, for every resource the transaction
//! mutated, a reconciled value `X_new`. The SST is the short classical
//! transaction that writes those values to the LDBS; the paper delegates
//! consistency and durability to it. If the LDBS rejects the SST (a CHECK
//! constraint such as `FreeTickets ≥ 0` fails after reconciliation — the
//! §VII "high rate of aborts" problem), the whole global commit fails and
//! the GTM aborts the transaction.

use pstm_storage::{BindingRegistry, Database, WriteOp, WriteSet};
use pstm_types::{PstmResult, ResourceId, TxnId, Value};

/// A prepared Secure System Transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct Sst {
    /// The middleware transaction this SST commits.
    pub origin: TxnId,
    /// The reconciled values to flush, in resource order.
    pub writes: Vec<(ResourceId, Value)>,
}

/// Offset added to the origin transaction id to form the engine-level SST
/// transaction id (keeps middleware and SST ids disjoint in the WAL).
/// [`crate::gtm::Gtm::begin`] rejects middleware ids at or above this
/// base, so the addition below cannot overflow or collide. The canonical
/// definition lives on [`TxnId`] so offline forensics can invert it.
pub(crate) const SST_ID_BASE: u64 = TxnId::SST_ENGINE_BASE;

impl Sst {
    /// Builds an SST from reconciled `(resource, X_new)` pairs. Pairs are
    /// sorted by resource for deterministic WAL content.
    #[must_use]
    pub fn new(origin: TxnId, mut writes: Vec<(ResourceId, Value)>) -> Self {
        writes.sort_by_key(|(r, _)| *r);
        Sst { origin, writes }
    }

    /// The engine transaction id this SST runs under.
    #[must_use]
    pub fn engine_txn(&self) -> TxnId {
        self.origin.sst_engine()
    }

    /// Whether there is anything to write (read-only transactions produce
    /// empty SSTs that are skipped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Executes the SST against the LDBS as one atomic write set. CHECK
    /// constraints are enforced inside; on violation nothing is applied
    /// and the error is returned for the GTM to convert into a global
    /// abort.
    // pstm-lockgraph: flush-point
    pub fn execute(&self, db: &Database, bindings: &BindingRegistry) -> PstmResult<()> {
        if self.is_empty() {
            return Ok(());
        }
        let mut ws = WriteSet::new();
        for (resource, value) in &self.writes {
            let b = bindings.resolve(*resource)?;
            ws = ws.with(WriteOp::Update {
                table: b.table,
                row_id: b.row,
                column: b.column,
                value: value.clone(),
            });
        }
        db.apply_write_set(self.engine_txn(), &ws)?;
        Ok(())
    }
}

/// A fused SST batch: N ready commits on one shard flushed as **one**
/// engine transaction — one lock acquisition, one framed WAL flush, one
/// atomic apply — instead of N.
///
/// Members must have pairwise-disjoint write sets (enforced by
/// [`SstBatch::push`]): every member's `commit_local` reconciled against
/// the pre-batch permanent image, so two members writing one resource
/// would silently drop the earlier member's update (a lost update).
/// Overlapping candidates cut the group instead and flush separately.
///
/// Because the fusion is a single engine transaction, a crash anywhere
/// inside it is whole-batch-or-nothing after recovery: no member's
/// frames can surface without every member's.
#[derive(Clone, Debug, PartialEq)]
pub struct SstBatch {
    /// The member whose commit leads the group (first pushed).
    pub leader: TxnId,
    /// Member SSTs in arrival order; empty members are legal (read-only
    /// transactions ride along for the group ack).
    pub members: Vec<Sst>,
}

impl SstBatch {
    /// An empty batch led by `leader`'s commit.
    #[must_use]
    pub fn new(leader: TxnId) -> Self {
        SstBatch { leader, members: Vec::new() }
    }

    /// A batch seeded with its first member, which leads the group.
    /// Unlike [`SstBatch::push`] this cannot be refused — a singleton
    /// batch has nothing to overlap with.
    #[must_use]
    pub fn of(first: Sst) -> Self {
        SstBatch { leader: first.origin, members: vec![first] }
    }

    /// Adds `sst` if its writes are disjoint from every member's, else
    /// returns it back — the caller must cut the group there.
    pub fn push(&mut self, sst: Sst) -> Result<(), Sst> {
        let overlaps = self
            .members
            .iter()
            .any(|m| m.writes.iter().any(|(r, _)| sst.writes.iter().any(|(r2, _)| r == r2)));
        if overlaps {
            return Err(sst);
        }
        self.members.push(sst);
        Ok(())
    }

    /// Number of member commits in the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the batch has no members at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The engine transaction id the fused flush runs under.
    #[must_use]
    pub fn engine_txn(&self) -> TxnId {
        self.leader.batch_engine()
    }

    /// Executes every member's writes as one atomic write set. Disjoint
    /// members make the fused order irrelevant; writes are re-sorted by
    /// resource across the whole group for deterministic WAL content.
    /// On any error (constraint violation, injected fault) nothing is
    /// applied for *any* member.
    // pstm-lockgraph: flush-point
    pub fn execute(&self, db: &Database, bindings: &BindingRegistry) -> PstmResult<()> {
        let mut writes: Vec<(ResourceId, Value)> =
            self.members.iter().flat_map(|m| m.writes.iter().cloned()).collect();
        if writes.is_empty() {
            return Ok(());
        }
        writes.sort_by_key(|(r, _)| *r);
        let mut ws = WriteSet::new();
        for (resource, value) in &writes {
            let b = bindings.resolve(*resource)?;
            ws = ws.with(WriteOp::Update {
                table: b.table,
                row_id: b.row,
                column: b.column,
                value: value.clone(),
            });
        }
        db.apply_write_set(self.engine_txn(), &ws)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_storage::{ColumnDef, Constraint, Row, TableSchema};
    use pstm_types::{MemberId, PstmError, ValueKind};
    use std::sync::Arc;

    fn setup() -> (Arc<Database>, BindingRegistry, Vec<ResourceId>) {
        let db = Arc::new(Database::new());
        let schema = TableSchema::new(
            "Car",
            vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("free", ValueKind::Int)],
        )
        .unwrap();
        let table = db.create_table(schema, vec![Constraint::non_negative("free>=0", 1)]).unwrap();
        let boot = TxnId(999);
        db.begin(boot).unwrap();
        let mut bindings = BindingRegistry::new();
        let mut rs = Vec::new();
        for i in 0..2 {
            let row =
                db.insert(boot, table, Row::new(vec![Value::Int(i), Value::Int(10)])).unwrap();
            let o = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
            rs.push(ResourceId::atomic(o));
        }
        db.commit(boot).unwrap();
        (db, bindings, rs)
    }

    #[test]
    fn sst_flushes_reconciled_values() {
        let (db, bindings, rs) = setup();
        let sst = Sst::new(TxnId(1), vec![(rs[0], Value::Int(9)), (rs[1], Value::Int(8))]);
        sst.execute(&db, &bindings).unwrap();
        let b0 = bindings.resolve(rs[0]).unwrap();
        let b1 = bindings.resolve(rs[1]).unwrap();
        assert_eq!(db.get_col(b0.table, b0.row, b0.column).unwrap(), Value::Int(9));
        assert_eq!(db.get_col(b1.table, b1.row, b1.column).unwrap(), Value::Int(8));
    }

    #[test]
    fn constraint_violation_applies_nothing() {
        let (db, bindings, rs) = setup();
        let sst = Sst::new(TxnId(1), vec![(rs[0], Value::Int(5)), (rs[1], Value::Int(-1))]);
        let err = sst.execute(&db, &bindings).unwrap_err();
        assert!(matches!(err, PstmError::ConstraintViolation { .. }));
        let b0 = bindings.resolve(rs[0]).unwrap();
        assert_eq!(db.get_col(b0.table, b0.row, b0.column).unwrap(), Value::Int(10), "atomic");
    }

    #[test]
    fn empty_sst_is_a_noop() {
        let (db, bindings, _) = setup();
        let sst = Sst::new(TxnId(7), vec![]);
        assert!(sst.is_empty());
        sst.execute(&db, &bindings).unwrap();
        assert_eq!(db.stats().commits, 1, "only the bootstrap commit");
    }

    #[test]
    fn engine_ids_are_disjoint_from_middleware_ids() {
        let sst = Sst::new(TxnId(42), vec![]);
        assert_ne!(sst.engine_txn(), TxnId(42));
        assert!(sst.engine_txn().0 > (1 << 48));
    }

    #[test]
    fn writes_are_sorted_for_determinism() {
        let (_, _, rs) = setup();
        let sst = Sst::new(TxnId(1), vec![(rs[1], Value::Int(1)), (rs[0], Value::Int(2))]);
        assert!(sst.writes[0].0 < sst.writes[1].0);
    }

    #[test]
    fn batch_fuses_disjoint_members_into_one_apply() {
        let (db, bindings, rs) = setup();
        let commits_before = db.stats().commits;
        let mut batch = SstBatch::new(TxnId(1));
        batch.push(Sst::new(TxnId(1), vec![(rs[0], Value::Int(7))])).unwrap();
        batch.push(Sst::new(TxnId(2), vec![(rs[1], Value::Int(6))])).unwrap();
        assert_eq!(batch.len(), 2);
        batch.execute(&db, &bindings).unwrap();
        let b0 = bindings.resolve(rs[0]).unwrap();
        let b1 = bindings.resolve(rs[1]).unwrap();
        assert_eq!(db.get_col(b0.table, b0.row, b0.column).unwrap(), Value::Int(7));
        assert_eq!(db.get_col(b1.table, b1.row, b1.column).unwrap(), Value::Int(6));
        assert_eq!(db.stats().commits, commits_before + 1, "one engine commit for the group");
    }

    #[test]
    fn batch_rejects_overlapping_members() {
        let (_, _, rs) = setup();
        let mut batch = SstBatch::new(TxnId(1));
        batch.push(Sst::new(TxnId(1), vec![(rs[0], Value::Int(7))])).unwrap();
        let rejected = batch
            .push(Sst::new(TxnId(2), vec![(rs[0], Value::Int(5)), (rs[1], Value::Int(4))]))
            .unwrap_err();
        assert_eq!(rejected.origin, TxnId(2), "the overlapping SST comes back whole");
        assert_eq!(batch.len(), 1);
        // A disjoint member still fits after the rejection.
        batch.push(Sst::new(TxnId(3), vec![(rs[1], Value::Int(3))])).unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn batch_constraint_violation_applies_nothing_for_any_member() {
        let (db, bindings, rs) = setup();
        let mut batch = SstBatch::new(TxnId(1));
        batch.push(Sst::new(TxnId(1), vec![(rs[0], Value::Int(5))])).unwrap();
        batch.push(Sst::new(TxnId(2), vec![(rs[1], Value::Int(-1))])).unwrap();
        let err = batch.execute(&db, &bindings).unwrap_err();
        assert!(matches!(err, PstmError::ConstraintViolation { .. }));
        let b0 = bindings.resolve(rs[0]).unwrap();
        assert_eq!(
            db.get_col(b0.table, b0.row, b0.column).unwrap(),
            Value::Int(10),
            "the innocent member's write must not survive a fused failure"
        );
    }

    #[test]
    fn batch_engine_ids_are_disjoint_from_sst_and_middleware_ids() {
        let mut batch = SstBatch::new(TxnId(42));
        batch.push(Sst::new(TxnId(42), vec![])).unwrap();
        assert!(batch.engine_txn().0 >= TxnId::SST_BATCH_ENGINE_BASE);
        assert_ne!(batch.engine_txn(), Sst::new(TxnId(42), vec![]).engine_txn());
        let empty = SstBatch::new(TxnId(9));
        assert!(empty.is_empty());
    }
}
