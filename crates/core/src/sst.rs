//! Secure System Transactions.
//!
//! At global commit the GTM owns, for every resource the transaction
//! mutated, a reconciled value `X_new`. The SST is the short classical
//! transaction that writes those values to the LDBS; the paper delegates
//! consistency and durability to it. If the LDBS rejects the SST (a CHECK
//! constraint such as `FreeTickets ≥ 0` fails after reconciliation — the
//! §VII "high rate of aborts" problem), the whole global commit fails and
//! the GTM aborts the transaction.

use pstm_storage::{BindingRegistry, Database, WriteOp, WriteSet};
use pstm_types::{PstmResult, ResourceId, TxnId, Value};

/// A prepared Secure System Transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct Sst {
    /// The middleware transaction this SST commits.
    pub origin: TxnId,
    /// The reconciled values to flush, in resource order.
    pub writes: Vec<(ResourceId, Value)>,
}

/// Offset added to the origin transaction id to form the engine-level SST
/// transaction id (keeps middleware and SST ids disjoint in the WAL).
/// [`crate::gtm::Gtm::begin`] rejects middleware ids at or above this
/// base, so the addition below cannot overflow or collide.
pub(crate) const SST_ID_BASE: u64 = 1 << 48;

impl Sst {
    /// Builds an SST from reconciled `(resource, X_new)` pairs. Pairs are
    /// sorted by resource for deterministic WAL content.
    #[must_use]
    pub fn new(origin: TxnId, mut writes: Vec<(ResourceId, Value)>) -> Self {
        writes.sort_by_key(|(r, _)| *r);
        Sst { origin, writes }
    }

    /// The engine transaction id this SST runs under.
    #[must_use]
    pub fn engine_txn(&self) -> TxnId {
        TxnId(SST_ID_BASE + self.origin.0)
    }

    /// Whether there is anything to write (read-only transactions produce
    /// empty SSTs that are skipped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Executes the SST against the LDBS as one atomic write set. CHECK
    /// constraints are enforced inside; on violation nothing is applied
    /// and the error is returned for the GTM to convert into a global
    /// abort.
    pub fn execute(&self, db: &Database, bindings: &BindingRegistry) -> PstmResult<()> {
        if self.is_empty() {
            return Ok(());
        }
        let mut ws = WriteSet::new();
        for (resource, value) in &self.writes {
            let b = bindings.resolve(*resource)?;
            ws = ws.with(WriteOp::Update {
                table: b.table,
                row_id: b.row,
                column: b.column,
                value: value.clone(),
            });
        }
        db.apply_write_set(self.engine_txn(), &ws)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_storage::{ColumnDef, Constraint, Row, TableSchema};
    use pstm_types::{MemberId, PstmError, ValueKind};
    use std::sync::Arc;

    fn setup() -> (Arc<Database>, BindingRegistry, Vec<ResourceId>) {
        let db = Arc::new(Database::new());
        let schema = TableSchema::new(
            "Car",
            vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("free", ValueKind::Int)],
        )
        .unwrap();
        let table = db.create_table(schema, vec![Constraint::non_negative("free>=0", 1)]).unwrap();
        let boot = TxnId(999);
        db.begin(boot).unwrap();
        let mut bindings = BindingRegistry::new();
        let mut rs = Vec::new();
        for i in 0..2 {
            let row =
                db.insert(boot, table, Row::new(vec![Value::Int(i), Value::Int(10)])).unwrap();
            let o = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
            rs.push(ResourceId::atomic(o));
        }
        db.commit(boot).unwrap();
        (db, bindings, rs)
    }

    #[test]
    fn sst_flushes_reconciled_values() {
        let (db, bindings, rs) = setup();
        let sst = Sst::new(TxnId(1), vec![(rs[0], Value::Int(9)), (rs[1], Value::Int(8))]);
        sst.execute(&db, &bindings).unwrap();
        let b0 = bindings.resolve(rs[0]).unwrap();
        let b1 = bindings.resolve(rs[1]).unwrap();
        assert_eq!(db.get_col(b0.table, b0.row, b0.column).unwrap(), Value::Int(9));
        assert_eq!(db.get_col(b1.table, b1.row, b1.column).unwrap(), Value::Int(8));
    }

    #[test]
    fn constraint_violation_applies_nothing() {
        let (db, bindings, rs) = setup();
        let sst = Sst::new(TxnId(1), vec![(rs[0], Value::Int(5)), (rs[1], Value::Int(-1))]);
        let err = sst.execute(&db, &bindings).unwrap_err();
        assert!(matches!(err, PstmError::ConstraintViolation { .. }));
        let b0 = bindings.resolve(rs[0]).unwrap();
        assert_eq!(db.get_col(b0.table, b0.row, b0.column).unwrap(), Value::Int(10), "atomic");
    }

    #[test]
    fn empty_sst_is_a_noop() {
        let (db, bindings, _) = setup();
        let sst = Sst::new(TxnId(7), vec![]);
        assert!(sst.is_empty());
        sst.execute(&db, &bindings).unwrap();
        assert_eq!(db.stats().commits, 1, "only the bootstrap commit");
    }

    #[test]
    fn engine_ids_are_disjoint_from_middleware_ids() {
        let sst = Sst::new(TxnId(42), vec![]);
        assert_ne!(sst.engine_txn(), TxnId(42));
        assert!(sst.engine_txn().0 > (1 << 48));
    }

    #[test]
    fn writes_are_sorted_for_determinism() {
        let (_, _, rs) = setup();
        let sst = Sst::new(TxnId(1), vec![(rs[1], Value::Int(1)), (rs[0], Value::Int(2))]);
        assert!(sst.writes[0].0 < sst.writes[1].0);
    }
}
