//! `pstm-model` — the paper's closed-form model (§VI.A).
//!
//! Implements, verbatim:
//!
//! * **eq. (3)** — 2PL mean execution time under `c` conflicts among `n`
//!   transactions, assuming a conflicting arrival lands at half the
//!   predecessor's execution time:
//!   `τ_2PL(c) = ((n−c)·τe + c·(τe + τe/2)) / n`;
//! * **eq. (4)** — the probability of `k` *incompatible* conflicts when
//!   `c` of `n` transactions conflict and `i` of them are incompatible:
//!   the hypergeometric `P(k) = C(i,k)·C(n−i,c−k)/C(n,c)`;
//! * **eq. (5)** — the pre-serialization middleware's expected execution
//!   time `τ_our(c,i) = Σ_k P(k)·τ_2PL(k)` (only incompatible conflicts
//!   cost waiting; compatible conflicts proceed on virtual copies);
//! * the **abort model** — under 2PL every transaction sleeping past the
//!   timeout aborts, so the abort share of disconnected transactions is
//!   `P(d)`; under the middleware it is the product
//!   `P(abort) = P(d)·P(c)·P(i)`.
//!
//! [`figures`] renders the exact series of the paper's Fig. 1 and Fig. 2.

#![warn(missing_docs)]

pub mod figures;
pub mod prob;

pub use figures::{fig1_rows, fig2_rows, Fig1Row, Fig2Row};
pub use prob::{
    abort_pct_pstm, abort_pct_twopl, exec_time_pstm, exec_time_twopl, hypergeom_pmf, ln_binom,
};
