//! The closed-form quantities: equations (3)–(5) and the abort product.

/// Natural log of `n!` via the log-gamma identity, exact enough for
/// binomials with `n` in the thousands.
fn ln_factorial(n: u64) -> f64 {
    // Stirling series with correction terms; exact table for small n.
    #[allow(clippy::approx_constant)] // ln(2!) genuinely equals ln 2
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_945_8,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
        30.671_860_106_080_672,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if n < TABLE.len() as u64 {
        return TABLE[n as usize];
    }
    let n = n as f64;
    n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
        - 1.0 / (360.0 * n.powi(3))
}

/// `ln C(n, k)`; `-inf` when the binomial is zero (`k > n`).
#[must_use]
pub fn ln_binom(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// eq. (4): the hypergeometric pmf — probability that exactly `k` of the
/// `c` conflicting transactions fall among the `i` incompatible ones,
/// out of `n` total.
#[must_use]
pub fn hypergeom_pmf(n: u64, i: u64, c: u64, k: u64) -> f64 {
    if k > i || k > c || c > n || c - k > n - i {
        return 0.0;
    }
    (ln_binom(i, k) + ln_binom(n - i, c - k) - ln_binom(n, c)).exp()
}

/// eq. (3): 2PL mean execution time with `c` conflicts among `n`
/// transactions, base execution time `tau_e`. A conflicting transaction
/// pays half a predecessor execution extra ("the arrival time of a
/// conflicting transaction occurs in half of execution time of the
/// previous one"; no multiple conflicts).
#[must_use]
pub fn exec_time_twopl(n: u64, c: u64, tau_e: f64) -> f64 {
    assert!(c <= n && n > 0, "conflicts {c} must not exceed transactions {n}");
    ((n - c) as f64 * tau_e + c as f64 * (tau_e + tau_e / 2.0)) / n as f64
}

/// eq. (5): the middleware's expected execution time with `c` conflicts
/// of which a transaction population contains `i` incompatible members —
/// the hypergeometric expectation of eq. (3) over the number of
/// *incompatible* conflicts `k` (compatible conflicts are free: they
/// share the resource on virtual copies).
#[must_use]
pub fn exec_time_pstm(n: u64, c: u64, i: u64, tau_e: f64) -> f64 {
    assert!(c <= n && i <= n && n > 0);
    let kmax = i.min(c);
    let mut t = 0.0;
    for k in 0..=kmax {
        let p = hypergeom_pmf(n, i, c, k);
        t += p * exec_time_twopl(n, k, tau_e);
    }
    t
}

/// 2PL abort share of disconnected transactions: with a sleep timeout
/// shorter than the disconnection, every disconnected transaction
/// aborts — the abort percentage *is* the disconnection percentage.
#[must_use]
pub fn abort_pct_twopl(p_disconnect: f64) -> f64 {
    100.0 * p_disconnect.clamp(0.0, 1.0)
}

/// The middleware's abort share: `P(abort) = P(d)·P(c)·P(i)` — a
/// disconnected transaction dies only if it also conflicts and the
/// conflict is incompatible.
#[must_use]
pub fn abort_pct_pstm(p_disconnect: f64, p_conflict: f64, p_incompatible: f64) -> f64 {
    100.0
        * p_disconnect.clamp(0.0, 1.0)
        * p_conflict.clamp(0.0, 1.0)
        * p_incompatible.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_binom_small_values_exact() {
        assert_eq!(ln_binom(5, 0), 0.0);
        assert!((ln_binom(5, 2) - (10.0f64).ln()).abs() < 1e-12);
        assert!((ln_binom(10, 5) - (252.0f64).ln()).abs() < 1e-12);
        assert_eq!(ln_binom(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_binom_large_values_close() {
        // C(1000, 500) via Stirling vs the known magnitude ~ 2.7e299.
        let ln = ln_binom(1000, 500);
        assert!((ln - 299.434 * std::f64::consts::LN_10).abs() / ln < 1e-3);
    }

    #[test]
    fn hypergeom_sums_to_one() {
        for (n, i, c) in [(100, 30, 10), (1000, 500, 100), (50, 0, 10), (50, 50, 10), (20, 5, 20)] {
            let total: f64 = (0..=c.min(i)).map(|k| hypergeom_pmf(n, i, c, k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} i={i} c={c}: sum {total}");
        }
    }

    #[test]
    fn hypergeom_mean_matches_formula() {
        let (n, i, c) = (1000u64, 300u64, 100u64);
        let mean: f64 = (0..=c.min(i)).map(|k| k as f64 * hypergeom_pmf(n, i, c, k)).sum();
        let expected = c as f64 * i as f64 / n as f64;
        assert!((mean - expected).abs() < 1e-6, "mean {mean} vs {expected}");
    }

    #[test]
    fn twopl_time_is_linear_in_conflicts() {
        let n = 100;
        assert_eq!(exec_time_twopl(n, 0, 1.0), 1.0);
        assert_eq!(exec_time_twopl(n, n, 1.0), 1.5);
        assert_eq!(exec_time_twopl(n, 50, 1.0), 1.25);
        assert_eq!(exec_time_twopl(n, 50, 2.0), 2.5);
    }

    #[test]
    fn pstm_best_case_is_50pct_of_the_2pl_overhead() {
        // c = 100%, i = 0: the paper's headline — our τ stays at τe while
        // 2PL pays 1.5·τe.
        let n = 100;
        let ours = exec_time_pstm(n, n, 0, 1.0);
        let theirs = exec_time_twopl(n, n, 1.0);
        assert!((ours - 1.0).abs() < 1e-12);
        assert!((theirs - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pstm_equals_twopl_when_everything_is_incompatible() {
        // i = n: every conflict is incompatible; the middleware buys
        // nothing.
        let n = 100;
        for c in [0, 10, 50, 100] {
            let ours = exec_time_pstm(n, c, n, 1.0);
            let theirs = exec_time_twopl(n, c, 1.0);
            assert!((ours - theirs).abs() < 1e-9, "c={c}: {ours} vs {theirs}");
        }
    }

    #[test]
    fn pstm_never_exceeds_twopl() {
        let n = 200;
        for c in (0..=n).step_by(20) {
            for i in (0..=n).step_by(20) {
                let ours = exec_time_pstm(n, c, i, 1.0);
                let theirs = exec_time_twopl(n, c, 1.0);
                assert!(ours <= theirs + 1e-9, "c={c} i={i}: {ours} > {theirs}");
            }
        }
    }

    #[test]
    fn abort_models_match_the_paper() {
        assert_eq!(abort_pct_twopl(0.05), 5.0);
        assert_eq!(abort_pct_twopl(2.0), 100.0, "clamped");
        assert_eq!(abort_pct_pstm(0.5, 0.5, 0.5), 12.5);
        assert_eq!(abort_pct_pstm(0.0, 1.0, 1.0), 0.0);
        assert!(abort_pct_pstm(0.3, 0.4, 0.2) < abort_pct_twopl(0.3));
    }

    proptest! {
        /// Middleware execution time grows in both c and i.
        #[test]
        fn prop_monotone_in_c_and_i(c in 0u64..100, i in 0u64..100) {
            let n = 100;
            let t = exec_time_pstm(n, c, i, 1.0);
            prop_assert!(exec_time_pstm(n, c + (c < 100) as u64, i, 1.0) + 1e-12 >= t);
            prop_assert!(exec_time_pstm(n, c, i + (i < 100) as u64, 1.0) + 1e-12 >= t);
        }

        /// The abort product is bounded by each of its factors.
        #[test]
        fn prop_abort_product_bounded(d in 0.0f64..1.0, c in 0.0f64..1.0, i in 0.0f64..1.0) {
            let a = abort_pct_pstm(d, c, i);
            prop_assert!(a <= abort_pct_twopl(d) + 1e-12);
            prop_assert!(a <= 100.0 * c + 1e-12);
            prop_assert!(a <= 100.0 * i + 1e-12);
            prop_assert!(a >= 0.0);
        }

        /// Hypergeometric pmf values are valid probabilities.
        #[test]
        fn prop_pmf_in_unit_interval(n in 1u64..500, i_frac in 0.0f64..1.0, c_frac in 0.0f64..1.0, k in 0u64..500) {
            let i = (n as f64 * i_frac) as u64;
            let c = (n as f64 * c_frac) as u64;
            let p = hypergeom_pmf(n, i, c, k);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
    }
}
