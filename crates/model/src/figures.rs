//! Series generators for the paper's Fig. 1 and Fig. 2.

use crate::prob::{abort_pct_pstm, abort_pct_twopl, exec_time_pstm, exec_time_twopl};
use serde::Serialize;

/// One point of Fig. 1: average transaction execution time (τe = 1)
/// against the conflict percentage, for a given incompatibility
/// percentage.
#[derive(Clone, Copy, Debug, Serialize, PartialEq)]
pub struct Fig1Row {
    /// Conflict percentage `c` (0–100).
    pub conflict_pct: u64,
    /// Incompatibility percentage `i` (0–100).
    pub incompatible_pct: u64,
    /// 2PL execution time, eq. (3) — independent of `i`.
    pub twopl: f64,
    /// Middleware execution time, eq. (5).
    pub pstm: f64,
}

/// Renders Fig. 1: conflict percentage 0..=100 (step 10) × the given
/// incompatibility levels, with `n` transactions and τe = `tau_e`.
#[must_use]
pub fn fig1_rows(n: u64, tau_e: f64, incompatible_levels: &[u64]) -> Vec<Fig1Row> {
    let mut rows = Vec::new();
    for &i_pct in incompatible_levels {
        for c_pct in (0..=100u64).step_by(10) {
            let c = n * c_pct / 100;
            let i = n * i_pct / 100;
            rows.push(Fig1Row {
                conflict_pct: c_pct,
                incompatible_pct: i_pct,
                twopl: exec_time_twopl(n, c, tau_e),
                pstm: exec_time_pstm(n, c, i, tau_e),
            });
        }
    }
    rows
}

/// One point of Fig. 2: abort percentage of disconnected/sleeping
/// transactions.
#[derive(Clone, Copy, Debug, Serialize, PartialEq)]
pub struct Fig2Row {
    /// Conflict percentage (0–100).
    pub conflict_pct: u64,
    /// Disconnection percentage (0–100).
    pub disconnected_pct: u64,
    /// Incompatibility percentage (0–100).
    pub incompatible_pct: u64,
    /// 2PL abort percentage (timeout kills every sleeper).
    pub twopl: f64,
    /// Middleware abort percentage, `P(d)·P(c)·P(i)`.
    pub pstm: f64,
}

/// Renders Fig. 2: sweeps conflict and disconnection percentages for each
/// incompatibility level.
#[must_use]
pub fn fig2_rows(incompatible_levels: &[u64]) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for &i_pct in incompatible_levels {
        for d_pct in (0..=100u64).step_by(10) {
            for c_pct in (0..=100u64).step_by(10) {
                let (d, c, i) = (d_pct as f64 / 100.0, c_pct as f64 / 100.0, i_pct as f64 / 100.0);
                rows.push(Fig2Row {
                    conflict_pct: c_pct,
                    disconnected_pct: d_pct,
                    incompatible_pct: i_pct,
                    twopl: abort_pct_twopl(d),
                    pstm: abort_pct_pstm(d, c, i),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_expected_grid() {
        let rows = fig1_rows(100, 1.0, &[0, 50, 100]);
        assert_eq!(rows.len(), 3 * 11);
        // 2PL line is the same across incompatibility levels.
        let at = |i: u64, c: u64| {
            rows.iter().find(|r| r.incompatible_pct == i && r.conflict_pct == c).unwrap()
        };
        assert_eq!(at(0, 50).twopl, at(100, 50).twopl);
        // i = 0 keeps pstm flat at τe.
        for c in (0..=100).step_by(10) {
            assert!((at(0, c).pstm - 1.0).abs() < 1e-9);
        }
        // i = 100 collapses onto 2PL.
        for c in (0..=100).step_by(10) {
            assert!((at(100, c).pstm - at(100, c).twopl).abs() < 1e-9);
        }
        // Intermediate i sits strictly between (at c > 0).
        let mid = at(50, 100);
        assert!(mid.pstm > 1.0 && mid.pstm < mid.twopl);
    }

    #[test]
    fn fig2_shapes() {
        let rows = fig2_rows(&[20, 60]);
        assert_eq!(rows.len(), 2 * 11 * 11);
        for r in &rows {
            assert!(r.pstm <= r.twopl + 1e-12, "middleware never aborts more sleepers");
            assert!(r.pstm >= 0.0 && r.twopl <= 100.0);
        }
        // 2PL depends only on the disconnection percentage.
        let d50: Vec<&Fig2Row> = rows.iter().filter(|r| r.disconnected_pct == 50).collect();
        assert!(d50.iter().all(|r| (r.twopl - 50.0).abs() < 1e-12));
        // Higher incompatibility → more aborts, all else equal.
        let pick = |i: u64| {
            rows.iter()
                .find(|r| {
                    r.incompatible_pct == i && r.disconnected_pct == 50 && r.conflict_pct == 50
                })
                .unwrap()
                .pstm
        };
        assert!(pick(60) > pick(20));
    }

    #[test]
    fn rows_serialize() {
        let rows = fig1_rows(10, 1.0, &[0]);
        let json = serde_json::to_string(&rows).unwrap();
        assert!(json.contains("conflict_pct"));
    }
}
