//! `pstm-sim` — a deterministic discrete-event simulator for mobile
//! transaction workloads.
//!
//! The paper evaluates its middleware by *emulation*: 1000 transactions,
//! fixed inter-arrival time, probabilistic disconnections. This crate
//! reproduces that methodology on a virtual clock:
//!
//! * [`events::EventQueue`] — a time-ordered event queue with FIFO
//!   tie-breaking (deterministic given a seed);
//! * [`script::TxnScript`] — each client is a script of think times,
//!   operations, disconnections and a final commit;
//! * [`backend::Backend`] — the scheduler-agnostic surface; adapters wrap
//!   the GTM ([`backend::GtmBackend`]) and the 2PL baseline
//!   ([`backend::TwoPlBackend`]) so experiments swap schedulers without
//!   touching the driver;
//! * [`runner::Runner`] — drives scripts through a backend, handles
//!   resume/abort side effects, fires periodic maintenance ticks, and
//!   produces a [`runner::RunReport`] with the metrics the paper plots
//!   (mean execution time, abort percentages, breakdowns by reason).

#![warn(missing_docs)]

pub mod backend;
pub mod events;
pub mod link;
pub mod runner;
pub mod script;

pub use backend::{AwakeOutcome, Backend, CommitOutcome, GtmBackend, TwoPlBackend};
pub use events::EventQueue;
pub use link::{LinkModel, LinkTrace};
pub use runner::{RunReport, Runner, RunnerConfig};
pub use script::{Step, TxnScript};
