//! A two-state Markov (Gilbert-style) mobile link model.
//!
//! The paper's emulation draws disconnections with a flat probability β;
//! a wireless link is better described by alternating connected /
//! disconnected sojourns with exponential durations. The model samples a
//! per-client [`LinkTrace`] — the workload generator then places
//! `Disconnect` steps wherever a client's operation falls into a down
//! window, so the *same* middleware mechanics are exercised with
//! realistically bursty disconnection patterns.
//!
//! Long-run fraction of time disconnected:
//! `mean_down / (mean_up + mean_down)` — the knob that corresponds to
//! the paper's β.

use pstm_types::{Duration, Timestamp};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters of the alternating-renewal link.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Mean length of a connected sojourn.
    pub mean_up: Duration,
    /// Mean length of a disconnected sojourn.
    pub mean_down: Duration,
}

impl LinkModel {
    /// The long-run fraction of time the link is down.
    #[must_use]
    pub fn down_fraction(&self) -> f64 {
        let (u, d) = (self.mean_up.as_secs_f64(), self.mean_down.as_secs_f64());
        if u + d == 0.0 {
            0.0
        } else {
            d / (u + d)
        }
    }

    /// Samples a trace covering `[0, horizon]`, starting connected.
    /// Sojourns are exponential (inverse-transform over the given RNG) so
    /// traces are memoryless within a state and deterministic per seed.
    #[must_use]
    pub fn sample_trace(&self, horizon: Timestamp, rng: &mut StdRng) -> LinkTrace {
        self.sample(horizon, rng, false)
    }

    /// Samples a trace whose initial state is drawn from the stationary
    /// distribution — at time 0 the link is down with probability
    /// [`LinkModel::down_fraction`]. Because sojourns are exponential
    /// (memoryless), conditioning on the state alone gives the exact
    /// stationary process; use this when time 0 is an arbitrary instant
    /// of an ambient link rather than a connection establishment.
    #[must_use]
    pub fn sample_trace_stationary(&self, horizon: Timestamp, rng: &mut StdRng) -> LinkTrace {
        let start_down = rng.gen_bool(self.down_fraction().clamp(0.0, 1.0));
        self.sample(horizon, rng, start_down)
    }

    fn sample(&self, horizon: Timestamp, rng: &mut StdRng, start_down: bool) -> LinkTrace {
        let mut down: Vec<(Timestamp, Timestamp)> = Vec::new();
        let mut t = Timestamp::ZERO;
        // Degenerate parameters: with no sojourn mass in either state the
        // loop below could never advance `t` — treat the link as always
        // up, matching `down_fraction`'s 0/0 convention.
        if self.mean_up == Duration::ZERO && self.mean_down == Duration::ZERO {
            return LinkTrace { down };
        }
        let exp = |mean: Duration, rng: &mut StdRng| -> Duration {
            let m = mean.as_secs_f64();
            if m <= 0.0 {
                return Duration::ZERO;
            }
            // Inverse transform; clamp the uniform away from 0 so ln is
            // finite, and the result up to the 1µs tick so a
            // positive-mean sojourn always advances time (sub-tick
            // samples round to zero and would stall the loop).
            let u: f64 = rng.gen_range(1e-12..1.0);
            Duration::from_secs_f64(-m * u.ln()).max(Duration::from_micros(1))
        };
        // An up-sojourn of zero (mean_up == 0) makes consecutive down
        // windows touch; fold them into one so the trace stays a list of
        // disjoint windows with real gaps and `next_up` reports the true
        // reconnection instant.
        fn push_window(down: &mut Vec<(Timestamp, Timestamp)>, s: Timestamp, e: Timestamp) {
            if e <= s {
                return;
            }
            match down.last_mut() {
                Some((_, prev_end)) if *prev_end == s => *prev_end = e,
                _ => down.push((s, e)),
            }
        }
        if start_down {
            let d = exp(self.mean_down, rng);
            push_window(&mut down, t, t + d);
            t += d;
        }
        while t < horizon {
            t += exp(self.mean_up, rng); // connected sojourn
            if t >= horizon {
                break;
            }
            let d = exp(self.mean_down, rng);
            push_window(&mut down, t, t + d);
            t += d;
        }
        LinkTrace { down }
    }
}

/// A sampled link trace: the down windows, in time order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkTrace {
    down: Vec<(Timestamp, Timestamp)>,
}

impl LinkTrace {
    /// A trace that is always connected.
    #[must_use]
    pub fn always_up() -> Self {
        LinkTrace::default()
    }

    /// Whether the link is down at `t` (down windows are half-open
    /// `[start, end)`).
    #[must_use]
    pub fn is_down(&self, t: Timestamp) -> bool {
        self.window_at(t).is_some()
    }

    /// The down window containing `t`, if any.
    #[must_use]
    pub fn window_at(&self, t: Timestamp) -> Option<(Timestamp, Timestamp)> {
        // Windows are sorted and disjoint: binary search by start.
        let idx = self.down.partition_point(|(s, _)| *s <= t);
        if idx == 0 {
            return None;
        }
        let (s, e) = self.down[idx - 1];
        (t >= s && t < e).then_some((s, e))
    }

    /// When the link next comes (back) up, seen from `t`.
    #[must_use]
    pub fn next_up(&self, t: Timestamp) -> Timestamp {
        self.window_at(t).map_or(t, |(_, e)| e)
    }

    /// Number of down windows.
    #[must_use]
    pub fn outage_count(&self) -> usize {
        self.down.len()
    }

    /// Total downtime within `[0, horizon]`.
    #[must_use]
    pub fn downtime_until(&self, horizon: Timestamp) -> Duration {
        let mut total = Duration::ZERO;
        for (s, e) in &self.down {
            if *s >= horizon {
                break;
            }
            let end = (*e).min(horizon);
            total += end.since(*s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(up: f64, down: f64) -> LinkModel {
        LinkModel { mean_up: Duration::from_secs_f64(up), mean_down: Duration::from_secs_f64(down) }
    }

    #[test]
    fn down_fraction_formula() {
        assert!((model(9.0, 1.0).down_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(model(0.0, 0.0).down_fraction(), 0.0);
        assert_eq!(model(0.0, 5.0).down_fraction(), 1.0);
    }

    #[test]
    fn trace_windows_are_sorted_and_disjoint() {
        let mut rng = StdRng::seed_from_u64(1);
        let trace = model(5.0, 2.0).sample_trace(Timestamp::from_secs_f64(1_000.0), &mut rng);
        assert!(trace.outage_count() > 10, "1000 s at ~7 s cycle must produce many outages");
        let mut prev_end = Timestamp::ZERO;
        for (s, e) in &trace.down {
            assert!(*s >= prev_end, "windows must not overlap");
            assert!(e > s);
            prev_end = *e;
        }
    }

    #[test]
    fn queries_agree_with_windows() {
        let trace = LinkTrace {
            down: vec![
                (Timestamp::from_secs_f64(10.0), Timestamp::from_secs_f64(12.0)),
                (Timestamp::from_secs_f64(20.0), Timestamp::from_secs_f64(25.0)),
            ],
        };
        assert!(!trace.is_down(Timestamp::from_secs_f64(9.9)));
        assert!(trace.is_down(Timestamp::from_secs_f64(10.0)));
        assert!(trace.is_down(Timestamp::from_secs_f64(11.9)));
        assert!(!trace.is_down(Timestamp::from_secs_f64(12.0)), "half-open window");
        assert_eq!(trace.next_up(Timestamp::from_secs_f64(21.0)), Timestamp::from_secs_f64(25.0));
        assert_eq!(trace.next_up(Timestamp::from_secs_f64(5.0)), Timestamp::from_secs_f64(5.0));
        assert_eq!(
            trace.downtime_until(Timestamp::from_secs_f64(22.0)),
            Duration::from_secs_f64(4.0)
        );
    }

    #[test]
    fn long_run_downtime_matches_down_fraction() {
        let m = model(8.0, 2.0); // 20% down
        let horizon = Timestamp::from_secs_f64(200_000.0);
        let mut rng = StdRng::seed_from_u64(7);
        let trace = m.sample_trace(horizon, &mut rng);
        let frac = trace.downtime_until(horizon).as_secs_f64() / horizon.as_secs_f64();
        assert!((frac - 0.2).abs() < 0.02, "sampled down fraction {frac} should approximate 0.2");
    }

    #[test]
    fn degenerate_zero_means_terminate_as_always_up() {
        // Regression: both means zero used to spin forever (t never
        // advanced past the horizon). The degenerate link is always up.
        let mut rng = StdRng::seed_from_u64(5);
        let trace = model(0.0, 0.0).sample_trace(Timestamp::from_secs_f64(100.0), &mut rng);
        assert_eq!(trace, LinkTrace::always_up());
        let trace =
            model(0.0, 0.0).sample_trace_stationary(Timestamp::from_secs_f64(100.0), &mut rng);
        assert_eq!(trace, LinkTrace::always_up());
    }

    #[test]
    fn zero_up_sojourns_merge_into_disjoint_windows_with_gaps() {
        // Regression: mean_up == 0 samples zero-length connected sojourns,
        // which used to emit touching down windows — `next_up` then lied
        // about the reconnection instant. Merged, an always-down link is
        // one window covering the horizon.
        let mut rng = StdRng::seed_from_u64(9);
        let horizon = Timestamp::from_secs_f64(50.0);
        let trace = model(0.0, 2.0).sample_trace(horizon, &mut rng);
        let mut prev_end = None;
        for (s, e) in &trace.down {
            assert!(e > s);
            if let Some(p) = prev_end {
                assert!(*s > p, "windows must be separated by a real gap, got {p:?} then {s:?}");
            }
            prev_end = Some(*e);
        }
        assert_eq!(trace.outage_count(), 1, "touching windows must fold into one");
        assert!(trace.is_down(Timestamp::ZERO));
        assert!(trace.next_up(Timestamp::ZERO) >= horizon, "down until past the horizon");
    }

    #[test]
    fn sub_tick_means_still_terminate() {
        // Sojourn samples below the 1µs tick are clamped up so the loop
        // always advances.
        let mut rng = StdRng::seed_from_u64(13);
        let trace = model(1e-9, 1e-9).sample_trace(Timestamp::from_secs_f64(0.01), &mut rng);
        let mut prev_end = Timestamp::ZERO;
        for (s, e) in &trace.down {
            assert!(*s >= prev_end);
            assert!(e > s);
            prev_end = *e;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = model(5.0, 1.0);
        let h = Timestamp::from_secs_f64(500.0);
        let a = m.sample_trace(h, &mut StdRng::seed_from_u64(3));
        let b = m.sample_trace(h, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let c = m.sample_trace(h, &mut StdRng::seed_from_u64(4));
        assert_ne!(a, c);
    }

    #[test]
    fn always_up_never_down() {
        let t = LinkTrace::always_up();
        assert!(!t.is_down(Timestamp::from_secs_f64(42.0)));
        assert_eq!(t.outage_count(), 0);
        assert_eq!(t.downtime_until(Timestamp::from_secs_f64(1e6)), Duration::ZERO);
    }
}

#[cfg(test)]
mod stationary_tests {
    use super::*;

    #[test]
    fn stationary_start_state_matches_down_fraction() {
        let m = LinkModel {
            mean_up: Duration::from_secs_f64(6.0),
            mean_down: Duration::from_secs_f64(4.0), // 40% down
        };
        let mut rng = StdRng::seed_from_u64(11);
        let samples = 4_000;
        let down_at_zero = (0..samples)
            .filter(|_| {
                m.sample_trace_stationary(Timestamp::from_secs_f64(1.0), &mut rng)
                    .is_down(Timestamp::ZERO)
            })
            .count();
        let frac = down_at_zero as f64 / samples as f64;
        assert!((frac - 0.4).abs() < 0.03, "stationary start: {frac} ≈ 0.4");
    }
}
