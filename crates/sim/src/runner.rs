//! The simulation driver: feeds client scripts through a backend on the
//! virtual clock and collects the metrics the paper reports.

use crate::backend::{AwakeOutcome, Backend, CommitOutcome};
use crate::events::EventQueue;
use crate::script::{Step, TxnScript};
use pstm_obs::{TraceEvent, Tracer};
use pstm_types::{AbortReason, Duration, ExecOutcome, PstmResult, StepEffects, Timestamp, TxnId};
use serde::Serialize;
use std::collections::BTreeMap;

/// Runner tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Service time charged per completed operation (models middleware +
    /// DB processing; the paper's think times dominate).
    pub op_service: Duration,
    /// Interval between maintenance ticks (timeout scans, deadlock
    /// detection).
    pub tick_interval: Duration,
    /// Hard stop: transactions unfinished at this virtual time are
    /// force-aborted and reported as unfinished.
    pub max_sim_time: Timestamp,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            op_service: Duration::from_millis(1),
            tick_interval: Duration::from_millis(250),
            max_sim_time: Timestamp::from_secs_f64(100_000.0),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClientStatus {
    Pending,
    Running,
    Waiting,
    Sleeping,
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
enum Outcome {
    Committed,
    Aborted(AbortReason),
}

struct Client {
    script: TxnScript,
    pc: usize,
    status: ClientStatus,
    finished_at: Option<Timestamp>,
    outcome: Option<Outcome>,
    /// Whether the client actually began a disconnection (reached a
    /// `Disconnect` step) — the honest denominator for the
    /// abort-%-of-disconnected metric; a transaction killed before it
    /// ever slept says nothing about disconnection handling.
    ever_slept: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimEvent {
    Arrive(TxnId),
    NextStep(TxnId),
    Reconnect(TxnId),
    Tick,
}

/// Per-transaction outcome detail.
#[derive(Clone, Debug, Serialize)]
pub struct TxnResult {
    /// Transaction id (the arrival label).
    pub txn: u64,
    /// `"committed"`, an abort reason, or `"unfinished"`.
    pub outcome: String,
    /// Arrival → terminal-state latency in seconds (0 for unfinished).
    pub latency_s: f64,
    /// Whether the script disconnects.
    pub disconnects: bool,
}

/// Aggregate metrics of one simulation run.
#[derive(Clone, Debug, Serialize)]
pub struct RunReport {
    /// Scheduler name.
    pub backend: String,
    /// Total transactions driven.
    pub total: usize,
    /// Commits.
    pub committed: usize,
    /// Aborts (any reason).
    pub aborted: usize,
    /// Transactions still unfinished at the simulation horizon.
    pub unfinished: usize,
    /// Abort counts by reason.
    pub aborts_by_reason: BTreeMap<String, usize>,
    /// Mean execution time (arrival → commit) of committed transactions,
    /// in seconds — the paper's Fig. 3 left axis.
    pub mean_exec_committed_s: f64,
    /// Mean time to any terminal state, in seconds.
    pub mean_exec_all_s: f64,
    /// Abort percentage over all transactions — Fig. 3 right axis.
    pub abort_pct: f64,
    /// Number of transactions that actually began a disconnection
    /// (reached a `Disconnect` step; scripts that were aborted earlier
    /// do not count — they say nothing about disconnection handling).
    pub disconnected_total: usize,
    /// How many of those aborted.
    pub disconnected_aborted: usize,
    /// Abort percentage among disconnecting transactions — Fig. 2's
    /// emulated counterpart.
    pub abort_pct_disconnected: f64,
    /// Virtual time when the last transaction finished.
    pub makespan_s: f64,
    /// Per-transaction detail, in transaction-id order.
    pub per_txn: Vec<TxnResult>,
    /// Handle on the backend's tracer — callers can read the metrics
    /// registry or drain a ring sink after the run. Not serialized.
    #[serde(skip)]
    pub trace: Option<Tracer>,
}

impl RunReport {
    /// Mean latency of the committed transactions among `ids`.
    #[must_use]
    pub fn mean_latency_of(&self, ids: &[u64]) -> f64 {
        let picked: Vec<&TxnResult> = self
            .per_txn
            .iter()
            .filter(|t| ids.contains(&t.txn) && t.outcome == "committed")
            .collect();
        if picked.is_empty() {
            return 0.0;
        }
        picked.iter().map(|t| t.latency_s).sum::<f64>() / picked.len() as f64
    }
}

/// Drives a set of scripts through a backend.
pub struct Runner<B: Backend> {
    backend: B,
    clients: BTreeMap<TxnId, Client>,
    queue: EventQueue<SimEvent>,
    config: RunnerConfig,
    unfinished: usize,
    now: Timestamp,
}

impl<B: Backend> Runner<B> {
    /// Builds a runner over `backend` for the given scripts.
    #[must_use]
    pub fn new(backend: B, scripts: Vec<TxnScript>, config: RunnerConfig) -> Self {
        let mut queue = EventQueue::new();
        let mut clients = BTreeMap::new();
        for script in scripts {
            queue.push(script.arrival, SimEvent::Arrive(script.txn));
            clients.insert(
                script.txn,
                Client {
                    script,
                    pc: 0,
                    status: ClientStatus::Pending,
                    finished_at: None,
                    outcome: None,
                    ever_slept: false,
                },
            );
        }
        let unfinished = clients.len();
        queue.push(Timestamp::ZERO, SimEvent::Tick);
        Runner { backend, clients, queue, config, unfinished, now: Timestamp::ZERO }
    }

    /// Runs to completion and produces the report.
    pub fn run(self) -> PstmResult<RunReport> {
        self.run_with_backend().map(|(r, _)| r)
    }

    /// Runs to completion, returning both the report and the backend
    /// (whose scheduler statistics callers may want to inspect).
    pub fn run_with_backend(mut self) -> PstmResult<(RunReport, B)> {
        while let Some((at, event)) = self.queue.pop() {
            self.now = at;
            if at > self.config.max_sim_time {
                break;
            }
            match event {
                SimEvent::Arrive(txn) => self.on_arrive(txn)?,
                SimEvent::NextStep(txn) => self.on_next_step(txn)?,
                SimEvent::Reconnect(txn) => self.on_reconnect(txn)?,
                SimEvent::Tick => {
                    let fx = self.backend.tick(at)?;
                    self.apply_effects(fx);
                    if self.unfinished > 0 && at < self.config.max_sim_time {
                        self.queue.push(at + self.config.tick_interval, SimEvent::Tick);
                    }
                }
            }
            if self.unfinished == 0 {
                break;
            }
        }
        // Horizon reached with work still in flight: force-abort the
        // stragglers in the backend so no uncommitted state survives the
        // run (they stay "unfinished" in the report — the horizon cut
        // them off; it was not a scheduling abort).
        if self.unfinished > 0 {
            let stragglers: Vec<TxnId> = self
                .clients
                .iter()
                .filter(|(_, c)| c.status != ClientStatus::Finished)
                .map(|(t, _)| *t)
                .collect();
            for txn in stragglers {
                // Pending arrivals never began; everything else aborts.
                if self.clients[&txn].status != ClientStatus::Pending {
                    let _ = self.backend.abort(txn, self.now);
                }
            }
        }
        let report = self.report();
        Ok((report, self.backend))
    }

    fn finish(&mut self, txn: TxnId, outcome: Outcome) {
        self.finish_at(txn, outcome, self.now);
    }

    /// Like [`Runner::finish`] but at an explicit instant — commits whose
    /// SST retried finish *after* the event that triggered them, since the
    /// backend charged the retry back-off to the committer.
    fn finish_at(&mut self, txn: TxnId, outcome: Outcome, at: Timestamp) {
        let Some(c) = self.clients.get_mut(&txn) else { return };
        if c.status == ClientStatus::Finished {
            return;
        }
        c.status = ClientStatus::Finished;
        c.finished_at = Some(at);
        c.outcome = Some(outcome);
        self.unfinished -= 1;
    }

    fn apply_effects(&mut self, fx: StepEffects) {
        let now = self.now;
        for (txn, _value) in fx.resumed {
            if let Some(c) = self.clients.get_mut(&txn) {
                match c.status {
                    ClientStatus::Waiting => {
                        c.status = ClientStatus::Running;
                        self.queue.push(now + self.config.op_service, SimEvent::NextStep(txn));
                    }
                    // A sleeping client's op completed server-side; the
                    // client learns at reconnect.
                    ClientStatus::Sleeping => {}
                    _ => {}
                }
            }
        }
        for (txn, reason) in fx.aborted {
            self.finish(txn, Outcome::Aborted(reason));
        }
    }

    fn on_arrive(&mut self, txn: TxnId) -> PstmResult<()> {
        let now = self.now;
        self.backend.begin(txn, now)?;
        let c = self.clients.get_mut(&txn).expect("arriving txn exists");
        c.status = ClientStatus::Running;
        self.queue.push(now, SimEvent::NextStep(txn));
        Ok(())
    }

    fn on_next_step(&mut self, txn: TxnId) -> PstmResult<()> {
        let now = self.now;
        let Some(c) = self.clients.get_mut(&txn) else { return Ok(()) };
        if c.status != ClientStatus::Running {
            return Ok(()); // stale event (client died or slept meanwhile)
        }
        let step = c.script.steps.get(c.pc).cloned();
        let Some(step) = step else {
            // Scripts end with Commit/Abort, so this is unreachable, but
            // degrade gracefully.
            return Ok(());
        };
        c.pc += 1;
        match step {
            Step::Think(d) => {
                self.queue.push(now + d, SimEvent::NextStep(txn));
            }
            Step::Op(resource, op) => {
                let (outcome, fx) = self.backend.execute(txn, resource, op, now)?;
                self.apply_effects(fx);
                match outcome {
                    ExecOutcome::Completed(_) => {
                        self.queue.push(now + self.config.op_service, SimEvent::NextStep(txn));
                    }
                    ExecOutcome::Waiting => {
                        let c = self.clients.get_mut(&txn).expect("client exists");
                        if c.status == ClientStatus::Running {
                            c.status = ClientStatus::Waiting;
                        }
                    }
                    ExecOutcome::Aborted(reason) => {
                        self.finish(txn, Outcome::Aborted(reason));
                    }
                }
            }
            Step::Disconnect(d) => {
                self.backend.tracer().emit(now, TraceEvent::LinkDown { txn });
                let fx = self.backend.sleep(txn, now)?;
                self.apply_effects(fx);
                let c = self.clients.get_mut(&txn).expect("client exists");
                c.ever_slept = true;
                if c.status == ClientStatus::Running {
                    c.status = ClientStatus::Sleeping;
                    self.queue.push(now + d, SimEvent::Reconnect(txn));
                }
            }
            Step::Commit => {
                let (outcome, fx) = self.backend.commit(txn, now)?;
                // SST retries are charged to the committer: its terminal
                // instant moves past `now` by the back-off the backend
                // reported.
                let done_at = now + fx.sst_busy;
                self.apply_effects(fx);
                match outcome {
                    CommitOutcome::Committed => self.finish_at(txn, Outcome::Committed, done_at),
                    CommitOutcome::Aborted(reason) => {
                        self.finish_at(txn, Outcome::Aborted(reason), done_at);
                    }
                }
            }
            Step::Abort => {
                let fx = self.backend.abort(txn, now)?;
                self.apply_effects(fx);
                self.finish(txn, Outcome::Aborted(AbortReason::User));
            }
        }
        Ok(())
    }

    fn on_reconnect(&mut self, txn: TxnId) -> PstmResult<()> {
        let now = self.now;
        let Some(c) = self.clients.get_mut(&txn) else { return Ok(()) };
        if c.status != ClientStatus::Sleeping {
            return Ok(()); // aborted while asleep
        }
        self.backend.tracer().emit(now, TraceEvent::LinkUp { txn });
        let (outcome, fx) = self.backend.awake(txn, now)?;
        self.apply_effects(fx);
        match outcome {
            AwakeOutcome::Resumed => {
                let c = self.clients.get_mut(&txn).expect("client exists");
                c.status = ClientStatus::Running;
                self.queue.push(now, SimEvent::NextStep(txn));
            }
            AwakeOutcome::Aborted(reason) => {
                self.finish(txn, Outcome::Aborted(reason));
            }
        }
        Ok(())
    }

    fn report(&self) -> RunReport {
        let total = self.clients.len();
        let mut committed = 0usize;
        let mut aborted = 0usize;
        let mut unfinished = 0usize;
        let mut aborts_by_reason: BTreeMap<String, usize> = BTreeMap::new();
        let mut exec_committed = 0.0f64;
        let mut exec_all = 0.0f64;
        let mut finished_count = 0usize;
        let mut disconnected_total = 0usize;
        let mut disconnected_aborted = 0usize;
        let mut makespan = 0.0f64;
        let mut per_txn = Vec::with_capacity(total);
        for c in self.clients.values() {
            if c.ever_slept {
                disconnected_total += 1;
            }
            let latency =
                c.finished_at.map(|f| f.since(c.script.arrival).as_secs_f64()).unwrap_or(0.0);
            let outcome_str = match c.outcome {
                Some(Outcome::Committed) => "committed".to_owned(),
                Some(Outcome::Aborted(r)) => r.to_string(),
                None => "unfinished".to_owned(),
            };
            per_txn.push(TxnResult {
                txn: c.script.txn.0,
                outcome: outcome_str,
                latency_s: latency,
                disconnects: c.script.disconnects,
            });
            match c.outcome {
                Some(Outcome::Committed) => {
                    committed += 1;
                    let dt = c.finished_at.expect("finished").since(c.script.arrival);
                    exec_committed += dt.as_secs_f64();
                    exec_all += dt.as_secs_f64();
                    finished_count += 1;
                    makespan = makespan.max(c.finished_at.unwrap().as_secs_f64());
                }
                Some(Outcome::Aborted(reason)) => {
                    aborted += 1;
                    *aborts_by_reason.entry(reason.to_string()).or_default() += 1;
                    if c.ever_slept {
                        disconnected_aborted += 1;
                    }
                    let dt = c.finished_at.expect("finished").since(c.script.arrival);
                    exec_all += dt.as_secs_f64();
                    finished_count += 1;
                    makespan = makespan.max(c.finished_at.unwrap().as_secs_f64());
                }
                None => unfinished += 1,
            }
        }
        RunReport {
            backend: self.backend.name().to_owned(),
            total,
            committed,
            aborted,
            unfinished,
            aborts_by_reason,
            mean_exec_committed_s: if committed > 0 {
                exec_committed / committed as f64
            } else {
                0.0
            },
            mean_exec_all_s: if finished_count > 0 {
                exec_all / finished_count as f64
            } else {
                0.0
            },
            abort_pct: if total > 0 { 100.0 * aborted as f64 / total as f64 } else { 0.0 },
            disconnected_total,
            disconnected_aborted,
            abort_pct_disconnected: if disconnected_total > 0 {
                100.0 * disconnected_aborted as f64 / disconnected_total as f64
            } else {
                0.0
            },
            makespan_s: makespan,
            per_txn,
            trace: Some(self.backend.tracer()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{GtmBackend, TwoPlBackend};
    use pstm_core::gtm::{Gtm, GtmConfig};
    use pstm_storage::{BindingRegistry, ColumnDef, Constraint, Database, Row, TableSchema};
    use pstm_twopl::{TwoPlConfig, TwoPlManager};
    use pstm_types::{MemberId, ResourceId, ScalarOp, Value, ValueKind};
    use std::sync::Arc;

    fn build_world(objects: usize) -> (Arc<Database>, BindingRegistry, Vec<ResourceId>) {
        let db = Arc::new(Database::new());
        let schema = TableSchema::new(
            "Obj",
            vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("v", ValueKind::Int)],
        )
        .unwrap();
        let table = db.create_table(schema, vec![Constraint::non_negative("v>=0", 1)]).unwrap();
        let boot = TxnId(1 << 40);
        db.begin(boot).unwrap();
        let mut bindings = BindingRegistry::new();
        let mut rs = Vec::new();
        for i in 0..objects {
            let row = db
                .insert(boot, table, Row::new(vec![Value::Int(i as i64), Value::Int(1000)]))
                .unwrap();
            let o = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
            rs.push(ResourceId::atomic(o));
        }
        db.commit(boot).unwrap();
        (db, bindings, rs)
    }

    fn secs(s: f64) -> Duration {
        Duration::from_secs_f64(s)
    }

    fn sub_script(txn: u64, arrival_s: f64, r: ResourceId, disconnect: Option<f64>) -> TxnScript {
        let mut steps = vec![Step::Think(secs(0.2)), Step::Op(r, ScalarOp::Sub(Value::Int(1)))];
        if let Some(d) = disconnect {
            steps.push(Step::Disconnect(secs(d)));
        }
        steps.push(Step::Think(secs(0.2)));
        steps.push(Step::Commit);
        TxnScript::new(TxnId(txn), Timestamp::from_secs_f64(arrival_s), steps)
    }

    #[test]
    fn gtm_commits_concurrent_subtractors() {
        let (db, bindings, rs) = build_world(1);
        let gtm = Gtm::new(db.clone(), bindings, GtmConfig::default());
        let scripts: Vec<TxnScript> =
            (1..=20).map(|i| sub_script(i, 0.1 * i as f64, rs[0], None)).collect();
        let report = Runner::new(GtmBackend(gtm), scripts, RunnerConfig::default()).run().unwrap();
        assert_eq!(report.committed, 20);
        assert_eq!(report.aborted, 0);
        assert_eq!(report.unfinished, 0);
        assert!(report.mean_exec_committed_s > 0.3);
    }

    #[test]
    fn injected_reconcile_faults_abort_cleanly_and_the_run_completes() {
        use pstm_types::{FaultDecision, FaultHook, FaultSite};
        use std::sync::atomic::{AtomicU32, Ordering};

        // Transient I/O at the first 3 arrivals of the reconcile seam:
        // those commits abort as SstFailure; everything else commits.
        struct IoOnFirstReconciles(AtomicU32);
        impl FaultHook for IoOnFirstReconciles {
            fn decide(&self, site: FaultSite) -> FaultDecision {
                if site.kind() == "reconcile" && self.0.fetch_add(1, Ordering::SeqCst) < 3 {
                    FaultDecision::Io
                } else {
                    FaultDecision::Proceed
                }
            }
        }

        let (db, bindings, rs) = build_world(1);
        let gtm = Gtm::new(db, bindings, GtmConfig::default());
        let mut backend = GtmBackend(gtm);
        backend.set_fault_hook(Arc::new(IoOnFirstReconciles(AtomicU32::new(0))));
        let scripts: Vec<TxnScript> =
            (1..=10).map(|i| sub_script(i, 0.1 * i as f64, rs[0], None)).collect();
        let report = Runner::new(backend, scripts, RunnerConfig::default()).run().unwrap();
        assert_eq!(report.aborted, 3, "each injected fault costs exactly one session");
        assert_eq!(report.committed, 7);
        assert_eq!(report.unfinished, 0, "injected faults never wedge the run");
    }

    #[test]
    fn twopl_serializes_the_same_workload_slower() {
        let (db, bindings, rs) = build_world(1);
        let scripts: Vec<TxnScript> =
            (1..=20).map(|i| sub_script(i, 0.1 * i as f64, rs[0], None)).collect();

        let gtm = Gtm::new(db.clone(), bindings.clone(), GtmConfig::default());
        let g =
            Runner::new(GtmBackend(gtm), scripts.clone(), RunnerConfig::default()).run().unwrap();

        let (db2, bindings2, rs2) = build_world(1);
        let remap: Vec<TxnScript> = scripts
            .iter()
            .map(|s| {
                let steps = s
                    .steps
                    .iter()
                    .map(|st| match st {
                        Step::Op(_, op) => Step::Op(rs2[0], op.clone()),
                        other => other.clone(),
                    })
                    .collect();
                TxnScript::new(s.txn, s.arrival, steps)
            })
            .collect();
        let tp = TwoPlManager::new(db2, bindings2, TwoPlConfig::default());
        let t = Runner::new(TwoPlBackend(tp), remap, RunnerConfig::default()).run().unwrap();

        assert_eq!(t.committed, 20, "2PL also commits all (no disconnections)");
        assert!(
            g.mean_exec_committed_s < t.mean_exec_committed_s,
            "semantic sharing must beat serialization: gtm={} 2pl={}",
            g.mean_exec_committed_s,
            t.mean_exec_committed_s
        );
    }

    #[test]
    fn disconnections_abort_under_twopl_timeout_but_not_under_gtm() {
        // One long sleeper + a stream of compatible subtractors.
        let (db, bindings, rs) = build_world(1);
        let mut scripts = vec![sub_script(1, 0.0, rs[0], Some(30.0))];
        for i in 2..=10 {
            scripts.push(sub_script(i, 0.2 * i as f64, rs[0], None));
        }

        let gtm = Gtm::new(db, bindings, GtmConfig::default());
        let g =
            Runner::new(GtmBackend(gtm), scripts.clone(), RunnerConfig::default()).run().unwrap();
        assert_eq!(g.committed, 10, "compatible sleeper survives under the GTM");
        assert_eq!(g.abort_pct_disconnected, 0.0);

        let (db2, bindings2, rs2) = build_world(1);
        let remap: Vec<TxnScript> = scripts
            .iter()
            .map(|s| {
                let steps = s
                    .steps
                    .iter()
                    .map(|st| match st {
                        Step::Op(_, op) => Step::Op(rs2[0], op.clone()),
                        other => other.clone(),
                    })
                    .collect();
                TxnScript::new(s.txn, s.arrival, steps)
            })
            .collect();
        let config = TwoPlConfig {
            sleep_timeout: Some(Duration::from_secs_f64(10.0)),
            ..TwoPlConfig::default()
        };
        let tp = TwoPlManager::new(db2, bindings2, config);
        let t = Runner::new(TwoPlBackend(tp), remap, RunnerConfig::default()).run().unwrap();
        assert_eq!(t.disconnected_total, 1);
        assert_eq!(t.disconnected_aborted, 1, "2PL kills the sleeper at its timeout");
        assert_eq!(t.aborts_by_reason.get("sleep-timeout"), Some(&1));
        assert_eq!(t.committed, 9);
    }

    #[test]
    fn user_abort_scripts_count_as_user_aborts() {
        let (db, bindings, rs) = build_world(1);
        let script = TxnScript::new(
            TxnId(1),
            Timestamp::ZERO,
            vec![Step::Op(rs[0], ScalarOp::Read), Step::Abort],
        );
        let gtm = Gtm::new(db, bindings, GtmConfig::default());
        let report =
            Runner::new(GtmBackend(gtm), vec![script], RunnerConfig::default()).run().unwrap();
        assert_eq!(report.aborted, 1);
        assert_eq!(report.aborts_by_reason.get("user"), Some(&1));
    }

    #[test]
    fn sst_retries_charge_virtual_time_to_the_committer() {
        // Regression: the retry loop used to re-execute the SST at the
        // same `now`, so an I/O-faulted run reported the same latency as
        // a clean one. With a configured back-off, each retry must push
        // the committer's terminal instant out by the delay.
        let run = |faults: u32| {
            let (db, bindings, rs) = build_world(1);
            db.inject_write_set_faults(faults);
            let config = GtmConfig {
                sst_retries: 3,
                sst_retry_delay: Duration::from_secs_f64(1.0),
                ..GtmConfig::default()
            };
            let gtm = Gtm::new(db, bindings, config);
            let scripts = vec![sub_script(1, 0.0, rs[0], None)];
            Runner::new(GtmBackend(gtm), scripts, RunnerConfig::default()).run().unwrap()
        };
        let clean = run(0);
        let faulted = run(2);
        assert_eq!(clean.committed, 1);
        assert_eq!(faulted.committed, 1);
        let charged = faulted.mean_exec_committed_s - clean.mean_exec_committed_s;
        assert!(
            (charged - 2.0).abs() < 1e-6,
            "two retries at 1s back-off must cost 2s of latency, got {charged}"
        );
    }

    #[test]
    fn report_serializes_to_json() {
        let (db, bindings, rs) = build_world(1);
        let gtm = Gtm::new(db, bindings, GtmConfig::default());
        let scripts = vec![sub_script(1, 0.0, rs[0], None)];
        let report = Runner::new(GtmBackend(gtm), scripts, RunnerConfig::default()).run().unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"backend\":\"gtm\""));
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let (db, bindings, rs) = build_world(2);
            let gtm = Gtm::new(db, bindings, GtmConfig::default());
            let scripts: Vec<TxnScript> = (1..=30)
                .map(|i| {
                    sub_script(
                        i,
                        0.05 * i as f64,
                        rs[(i % 2) as usize],
                        if i % 5 == 0 { Some(3.0) } else { None },
                    )
                })
                .collect();
            Runner::new(GtmBackend(gtm), scripts, RunnerConfig::default()).run().unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }
}
