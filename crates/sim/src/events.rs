//! The simulation event queue.
//!
//! A binary heap ordered by `(time, sequence)`: events at the same
//! virtual instant pop in insertion order, which keeps runs bit-for-bit
//! reproducible.

use pstm_types::Timestamp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of simulation events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Timestamp, u64)>>,
    payloads: std::collections::HashMap<u64, E>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), payloads: Default::default(), seq: 0 }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: Timestamp, event: E) {
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, id)));
        self.payloads.insert(id, event);
    }

    /// Pops the earliest event (FIFO among equal timestamps).
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        let Reverse((at, id)) = self.heap.pop()?;
        let event = self.payloads.remove(&id).expect("payload exists for queued id");
        Some((at, event))
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Timestamp::from_millis(30), "c");
        q.push(Timestamp::from_millis(10), "a");
        q.push(Timestamp::from_millis(20), "b");
        assert_eq!(q.peek_time(), Some(Timestamp::from_millis(10)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_millis(5);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(Timestamp::from_millis(10), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.is_empty());
        q.push(Timestamp::from_millis(5), 2);
        q.push(Timestamp::from_millis(1), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.pop().is_none());
    }
}
