//! The scheduler-agnostic backend surface and its two adapters.

use pstm_core::gtm::{AwakeResult, CommitResult, Gtm};
use pstm_obs::Tracer;
use pstm_twopl::TwoPlManager;
use pstm_types::{
    AbortReason, ExecOutcome, PstmResult, ResourceId, ScalarOp, StepEffects, Timestamp, TxnId,
};

/// Outcome of a commit request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Durable.
    Committed,
    /// The system aborted the transaction at commit time.
    Aborted(AbortReason),
}

/// Outcome of an awake request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AwakeOutcome {
    /// The transaction resumed and may continue its script.
    Resumed,
    /// The system aborted the transaction (sleep conflict under the GTM,
    /// or a sleep-timeout abort that already happened under 2PL).
    Aborted(AbortReason),
}

/// What the simulator needs from a transaction manager.
pub trait Backend {
    /// Human-readable scheduler name for reports.
    fn name(&self) -> &'static str;
    /// `⟨begin, A⟩`.
    fn begin(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()>;
    /// Submit one operation.
    fn execute(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        now: Timestamp,
    ) -> PstmResult<(ExecOutcome, StepEffects)>;
    /// Request commit.
    fn commit(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(CommitOutcome, StepEffects)>;
    /// User abort.
    fn abort(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects>;
    /// Client disconnected / went idle.
    fn sleep(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects>;
    /// Client reconnected.
    fn awake(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(AwakeOutcome, StepEffects)>;
    /// Periodic maintenance (timeouts, deadlock detection).
    fn tick(&mut self, now: Timestamp) -> PstmResult<StepEffects>;
    /// The backend's tracer handle, so the runner can stamp link events
    /// into the same stream and callers can read the metrics registry.
    fn tracer(&self) -> Tracer {
        Tracer::disabled()
    }
}

/// GTM adapter.
pub struct GtmBackend(pub Gtm);

impl GtmBackend {
    /// Installs a fault hook on the wrapped manager *and* its engine, so
    /// scripted simulations can inject commit-path faults (see
    /// `pstm_types::fault`). Single-manager runs are shard 0.
    pub fn set_fault_hook(&mut self, hook: pstm_types::SharedFaultHook) {
        self.0.database().set_fault_hook(hook.clone());
        self.0.set_fault_hook(hook, 0);
    }
}

impl Backend for GtmBackend {
    fn name(&self) -> &'static str {
        "gtm"
    }

    fn begin(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()> {
        self.0.begin(txn, now)
    }

    fn execute(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        now: Timestamp,
    ) -> PstmResult<(ExecOutcome, StepEffects)> {
        self.0.execute(txn, resource, op, now)
    }

    fn commit(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(CommitOutcome, StepEffects)> {
        let (result, fx) = self.0.commit(txn, now)?;
        let outcome = match result {
            CommitResult::Committed => CommitOutcome::Committed,
            CommitResult::Aborted(reason) => CommitOutcome::Aborted(reason),
        };
        Ok((outcome, fx))
    }

    fn abort(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        self.0.abort(txn, now)
    }

    fn sleep(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        self.0.sleep(txn, now)
    }

    fn awake(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(AwakeOutcome, StepEffects)> {
        let (result, fx) = self.0.awake(txn, now)?;
        let outcome = match result {
            AwakeResult::Resumed(_) => AwakeOutcome::Resumed,
            AwakeResult::Aborted => AwakeOutcome::Aborted(AbortReason::SleepConflict),
        };
        Ok((outcome, fx))
    }

    fn tick(&mut self, now: Timestamp) -> PstmResult<StepEffects> {
        self.0.tick(now)
    }

    fn tracer(&self) -> Tracer {
        self.0.tracer()
    }
}

/// 2PL adapter.
pub struct TwoPlBackend(pub TwoPlManager);

impl Backend for TwoPlBackend {
    fn name(&self) -> &'static str {
        "2pl"
    }

    fn begin(&mut self, txn: TxnId, _now: Timestamp) -> PstmResult<()> {
        self.0.begin(txn)
    }

    fn execute(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        now: Timestamp,
    ) -> PstmResult<(ExecOutcome, StepEffects)> {
        self.0.execute(txn, resource, op, now)
    }

    fn commit(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(CommitOutcome, StepEffects)> {
        let fx = self.0.commit(txn, now)?;
        Ok((CommitOutcome::Committed, fx))
    }

    fn abort(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        self.0.abort(txn, now)
    }

    fn sleep(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        self.0.sleep(txn, now)?;
        Ok(StepEffects::none())
    }

    fn awake(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(AwakeOutcome, StepEffects)> {
        // Under 2PL a sleeper may already have been aborted by the sleep
        // timeout; the runner treats that as "aborted before reconnect".
        match self.0.phase(txn) {
            Some(pstm_twopl::TxnPhase::Aborted) => {
                Ok((AwakeOutcome::Aborted(AbortReason::SleepTimeout), StepEffects::none()))
            }
            _ => {
                self.0.awake(txn, now)?;
                Ok((AwakeOutcome::Resumed, StepEffects::none()))
            }
        }
    }

    fn tick(&mut self, now: Timestamp) -> PstmResult<StepEffects> {
        self.0.tick(now)
    }

    fn tracer(&self) -> Tracer {
        self.0.tracer()
    }
}
