//! The deterministic chaos harness: a single-threaded coordinator that
//! drives a sharded counter workload through injected faults, crashes and
//! recoveries, then proves the two recovery invariants and hands the
//! stitched trace to `pstm-check` for serializability certification.
//!
//! ## Why a dedicated coordinator instead of `pstm-front`
//!
//! The sharded front-end is the *production* phased-commit coordinator,
//! but it is wall-clocked and multi-threaded — two properties the chaos
//! matrix cannot afford, because every `(seed, plan)` pair must replay
//! byte-identically (`pstm-check`'s wall-clock lint exists for the same
//! reason). The harness therefore replicates the front-end's commit
//! protocol exactly — lock shards ascending, `commit_local` each, fuse
//! one [`Sst`], consult the `pre-sst`/`pre-finish` seams, then
//! `commit_finish`/`commit_abort` — on a virtual clock, one step at a
//! time. The front-end's own seams are exercised under real threads by
//! the `sst_exhaustion` integration tests.
//!
//! ## The invariant ledger
//!
//! Every session's operations are `Sub(1)` against counter resources, so
//! the engine is its own ledger: for resource `r` with initial value
//! `I_r` and recovered value `V_r`, the applied delta is `d_r = I_r −
//! V_r`, and the harness's `acked` ledger records the deltas of commits
//! acknowledged to clients. After every recovery:
//!
//! 1. `d_r == acked_r` for every resource not touched by the in-flight
//!    commit — no acknowledged commit lost, none applied twice;
//! 2. for the one commit in flight at the crash (write intents `w_r`),
//!    either `d_r − acked_r == 0` everywhere (nothing survived) or
//!    `d_r − acked_r == w_r` on exactly its touched resources (the
//!    fused SST survived *whole*) — never a partial application. A
//!    surviving in-doubt commit is folded into the ledger, which is what
//!    re-checks invariant 1 ("not applied twice") in every later epoch.

use crate::injector::{FaultInjector, FiredFault};
use crate::plan::FaultPlan;
use pstm_check::{stitch_streams, verify_streams, TraceStream, Verdict};
use pstm_core::gtm::{CommitResult, Gtm, GtmConfig, LocalCommit};
use pstm_core::sst::Sst;
use pstm_obs::postmortem::{analyze, Postmortem};
use pstm_obs::recorder::{read_recorder, Recorder, ENGINE_SHARD};
use pstm_obs::{RingHandle, RingSink, Sink, TeeSink, TraceEvent, Tracer};
use pstm_storage::{BindingRegistry, Database};
use pstm_types::{
    AbortReason, Duration, ExecOutcome, FaultHook, FaultSite, PstmError, PstmResult, ResourceId,
    ScalarOp, Timestamp, TxnId, Value,
};
use pstm_workload::counter_world;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Shape of one chaos run. `seed` drives the workload generator; the
/// plan's own seed drives the injector — two runs differing only in
/// `plan` replay the identical workload against different adversaries.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Workload seed (session shapes, resource choices).
    pub seed: u64,
    /// GTM shards (resources are routed `object % shards`, like the
    /// front-end).
    pub shards: usize,
    /// Counter resources.
    pub resources: usize,
    /// Initial counter value (large enough that `Sub(1)` never trips the
    /// `>= 0` CHECK in a fault-free run).
    pub initial: i64,
    /// Sessions to drive through the run.
    pub sessions: usize,
    /// `Sub(1)` operations per session, spread over its chosen resources.
    pub ops_per_session: usize,
    /// The adversary.
    pub plan: FaultPlan,
    /// After this many recoveries the injector is disarmed so the run is
    /// guaranteed to finish (a plan of unbounded crashes would otherwise
    /// never drain the session list).
    pub max_recoveries: u32,
    /// Commit single-shard sessions through the fused group-commit
    /// protocol (the front-end station's split
    /// `commit_group_local`/`commit_group_finish` API) instead of one
    /// coordinated commit each. Multi-shard sessions still go through the
    /// cross-shard path, exactly like the production front-end.
    pub group_commit: bool,
    /// When set, every epoch's trace streams *also* flow into a durable
    /// flight-recorder file `epoch{N}.rec` under this directory (one file
    /// per process lifetime), and at every crash the crash picture
    /// `pstm_obs::postmortem` reconstructs from the file alone is checked
    /// against the harness's fault ledger: the reconstructed unresolved
    /// set must equal the stranded sessions, and the reconstructed
    /// in-doubt set must equal the ledger's whole-SST-survived
    /// reclassification.
    pub recorder_dir: Option<PathBuf>,
}

impl ChaosConfig {
    /// A small-but-contended default shape: 2 shards, 4 resources, 24
    /// sessions of 3 ops.
    #[must_use]
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        ChaosConfig {
            seed,
            shards: 2,
            resources: 4,
            initial: 10_000,
            sessions: 24,
            ops_per_session: 3,
            plan,
            max_recoveries: 8,
            group_commit: false,
            recorder_dir: None,
        }
    }

    /// Builder: same shape, but batched — single-shard sessions fuse
    /// into per-shard group commits.
    #[must_use]
    pub fn with_group_commit(mut self) -> Self {
        self.group_commit = true;
        self
    }

    /// Builder: record every epoch into a flight-recorder file under
    /// `dir` and cross-check the post-mortem against the fault ledger at
    /// every crash. The directory is created on first use.
    #[must_use]
    pub fn with_recorder(mut self, dir: impl Into<PathBuf>) -> Self {
        self.recorder_dir = Some(dir.into());
        self
    }
}

/// What one chaos run did and proved.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Commits acknowledged to their session.
    pub committed: u64,
    /// Commits whose session saw "crashed" but whose fused SST survived
    /// recovery whole — visible exactly once, per invariant 1.
    pub committed_in_doubt: u64,
    /// Sessions aborted by the scheduler or by injected transient faults.
    pub aborted: u64,
    /// The subset of `aborted` that died with [`AbortReason::SstFailure`]
    /// — persistent transient faults that exhausted the retry budget. The
    /// numerator of `bench_faults`' abort-amplification metric.
    pub aborted_sst_failure: u64,
    /// Sessions stranded by a crash with nothing applied.
    pub lost: u64,
    /// Injected crashes (== recoveries performed).
    pub crashes: u64,
    /// Faults fired, in order (the injector's journal).
    pub faults: Vec<FiredFault>,
    /// Determinism witness: byte-identical across replays of the same
    /// `(seed, plan)`. Excludes wall-clock measurements.
    pub fingerprint: String,
    /// Invariant violations (empty on a correct engine).
    pub violations: Vec<String>,
    /// Did `pstm-check` certify the stitched pre/post-crash trace
    /// serializable?
    pub certified: bool,
    /// Wall-clock recovery latency per crash, microseconds (`None` when
    /// the platform clock is unavailable). Not part of the fingerprint.
    pub recovery_wall_us: Vec<Option<u64>>,
    /// Final engine value per resource.
    pub final_values: Vec<i64>,
    /// Post-mortem-vs-ledger cross-checks performed (recorder mode only:
    /// one per crash plus one final quiescent check; 0 with the recorder
    /// off). Any mismatch lands in `violations`.
    pub recorder_checks: u64,
}

impl ChaosReport {
    /// True when every invariant held and the stitched trace certified.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.certified
    }
}

/// How many sessions run concurrently (virtual copies overlapping)
/// before the harness commits the wave.
const WAVE: usize = 4;

/// One epoch's volatile half: the shard managers and every sink handle
/// needed to snapshot its streams when it dies or the run ends.
struct Epoch {
    gtms: Vec<Gtm>,
    shard_rings: Vec<RingHandle>,
    engine_ring: RingHandle,
}

/// Outcome of one session's phased commit (crashes propagate as
/// `Err(PstmError::Crashed)` instead).
enum Settle {
    Committed,
    Aborted(AbortReason),
}

struct Chaos {
    db: Arc<Database>,
    bindings: BindingRegistry,
    resources: Vec<ResourceId>,
    injector: Arc<FaultInjector>,
    config: ChaosConfig,
    clock: u64,
    /// Per-resource acknowledged `Sub` total.
    acked: Vec<i64>,
    /// Write intents (resource index → subs) of the commit in flight, if
    /// a commit attempt is mid-protocol. For a fused group this is the
    /// *union* of the batch members' intents: the batch applies as one
    /// all-or-nothing engine write, so invariant 2 sees one in-flight
    /// unit either fully absent or fully applied.
    in_flight: Option<BTreeMap<usize, i64>>,
    /// How many sessions the in-flight unit carries (1 for a solo
    /// commit, the batch size for a fused group) — the reclassification
    /// quantum when a crashed unit turns out to have survived whole.
    in_flight_members: u64,
    /// The transactions riding the in-flight unit (the solo committer,
    /// or the fused batch members' origins) — what the post-mortem's
    /// in-doubt set is compared against when the unit survives a crash.
    in_flight_txns: Vec<TxnId>,
    /// The live epoch's flight recorder, when recorder mode is on.
    recorder: Option<Recorder>,
    /// Epochs started so far (names the per-epoch recorder files).
    epoch_no: u32,
    recorder_checks: u64,
    epochs: Vec<Vec<TraceStream>>,
    violations: Vec<String>,
}

impl Chaos {
    fn now(&mut self) -> Timestamp {
        self.clock += 1;
        Timestamp(self.clock)
    }

    fn shard_of(&self, r: ResourceId) -> usize {
        r.object.0 as usize % self.config.shards
    }

    /// Builds a fresh epoch: new ring sinks, new shard managers, hooks
    /// re-installed (the engine keeps its hook across recovery, but the
    /// managers are new objects). In recorder mode each epoch also opens
    /// its own flight-recorder file — one file per process lifetime — and
    /// every stream is teed into it alongside the in-memory rings.
    fn new_epoch(&mut self) -> PstmResult<Epoch> {
        self.recorder = match &self.config.recorder_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| PstmError::Io(format!("recorder dir: {e}")))?;
                let path = dir.join(format!("epoch{}.rec", self.epoch_no));
                // Durable write-through and half-segments far larger than
                // an epoch's traffic: the file must hold the *whole*
                // epoch for the post-mortem cross-check to be exact.
                let rec = Recorder::create(&path, 1 << 20, true)
                    .map_err(|e| PstmError::Io(format!("recorder create: {e}")))?;
                rec.write_meta(self.config.shards as u32, pstm_obs::wallclock::wall_now_us());
                Some(rec)
            }
            None => None,
        };
        self.epoch_no += 1;
        let tee = |ring: RingSink, shard: u32, rec: &Option<Recorder>| -> Box<dyn Sink> {
            match rec {
                Some(r) => Box::new(TeeSink::new(Box::new(ring), Box::new(r.sink(shard)))),
                None => Box::new(ring),
            }
        };
        let engine = RingSink::new(1 << 20);
        let engine_ring = engine.handle();
        self.db.set_tracer(Tracer::with_sink(tee(engine, ENGINE_SHARD, &self.recorder)));
        let mut gtms = Vec::with_capacity(self.config.shards);
        let mut shard_rings = Vec::with_capacity(self.config.shards);
        for i in 0..self.config.shards {
            let ring = RingSink::new(1 << 20);
            shard_rings.push(ring.handle());
            let tracer = Tracer::with_sink(tee(ring, i as u32, &self.recorder));
            let gtm_config = GtmConfig { sst_retries: 2, ..GtmConfig::default() };
            let mut gtm = Gtm::new(Arc::clone(&self.db), self.bindings.clone(), gtm_config)
                .with_tracer(tracer);
            gtm.set_fault_hook(Arc::clone(&self.injector) as _, i as u32);
            gtms.push(gtm);
        }
        Ok(Epoch { gtms, shard_rings, engine_ring })
    }

    /// Recorder mode: flush the live epoch's recorder and rebuild the
    /// crash picture from the *file alone* — exactly what a post-mortem
    /// of a dead process would see. `None` when the recorder is off.
    fn recorder_postmortem(&mut self) -> Option<Postmortem> {
        let rec = self.recorder.as_ref()?;
        rec.flush();
        match read_recorder(rec.path()) {
            Ok(replay) => Some(analyze(&replay)),
            Err(e) => {
                self.violations
                    .push(format!("recorder file unreadable at crash: {e} (recorder check)"));
                None
            }
        }
    }

    /// The per-crash cross-check: the post-mortem's reconstructed
    /// unresolved and in-doubt transaction sets must match the harness's
    /// own ledger exactly.
    fn check_postmortem(
        &mut self,
        pm: &Postmortem,
        mut stranded: Vec<TxnId>,
        mut expect_in_doubt: Vec<TxnId>,
    ) {
        stranded.sort_unstable();
        expect_in_doubt.sort_unstable();
        let unresolved = pm.unresolved_txns();
        if unresolved != stranded {
            self.violations.push(format!(
                "post-mortem unresolved set {unresolved:?} != ledger stranded set {stranded:?} \
                 (recorder check)"
            ));
        }
        if pm.in_doubt != expect_in_doubt {
            self.violations.push(format!(
                "post-mortem in-doubt set {:?} != ledger in-doubt set {expect_in_doubt:?} \
                 (recorder check)",
                pm.in_doubt
            ));
        }
        self.recorder_checks += 1;
    }

    /// Snapshots the epoch's streams (shards first, engine last) into the
    /// stitched-trace log.
    fn close_epoch(&mut self, epoch: &Epoch) {
        let mut streams = Vec::with_capacity(epoch.shard_rings.len() + 1);
        for (i, ring) in epoch.shard_rings.iter().enumerate() {
            streams.push(TraceStream { label: format!("shard{i}"), records: ring.snapshot() });
        }
        streams.push(TraceStream {
            label: "engine".to_string(),
            records: epoch.engine_ring.snapshot(),
        });
        self.epochs.push(streams);
    }

    fn read_value(&self, r: usize) -> PstmResult<i64> {
        let b = self.bindings.resolve(self.resources[r])?;
        match self.db.get_col(b.table, b.row, b.column)? {
            Value::Int(v) => Ok(v),
            other => Err(PstmError::internal(format!("counter resource holds {other:?}"))),
        }
    }

    /// The invariant check, run after every recovery and once at the end.
    /// `after_crash` selects whether an in-flight commit may have
    /// survived; outside a crash the ledger must match the engine
    /// exactly.
    fn check_ledger(&mut self, after_crash: bool) -> PstmResult<()> {
        let mut extra = Vec::with_capacity(self.config.resources);
        for r in 0..self.config.resources {
            let d = self.config.initial - self.read_value(r)?;
            extra.push(d - self.acked[r]);
        }
        let in_flight = if after_crash { self.in_flight.take() } else { None };
        match in_flight {
            Some(w) => {
                let none_survived = extra.iter().all(|&e| e == 0);
                let whole_sst_survived =
                    (0..self.config.resources).all(|r| extra[r] == w.get(&r).copied().unwrap_or(0));
                if none_survived {
                    // Invariant 2, absent case: the crash discarded the
                    // commit entirely. The session stays "lost".
                } else if whole_sst_survived {
                    // Invariant 2, applied case: the fused SST outlived
                    // the crash whole. Fold it into the ledger so every
                    // later epoch re-proves it is never applied twice.
                    for (r, subs) in &w {
                        self.acked[*r] += subs;
                    }
                    self.in_flight = Some(w); // signal "applied" to caller
                } else {
                    self.violations.push(format!(
                        "partial SST visible after recovery: intents {w:?}, unexplained deltas \
                         {extra:?} (invariant 2)"
                    ));
                }
            }
            None => {
                if extra.iter().any(|&e| e != 0) {
                    self.violations.push(format!(
                        "ledger mismatch with no commit in flight: unexplained deltas {extra:?} \
                         (invariant 1: acked commits lost or applied twice)"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The front-end's coordinated commit, replicated on the virtual
    /// clock: `commit_local` ascending, one fused SST with transient-I/O
    /// retries, the `pre-sst`/`pre-finish` seams in their real positions,
    /// then per-shard settlement.
    fn commit_session(
        &mut self,
        epoch: &mut Epoch,
        txn: TxnId,
        shards: &[usize],
    ) -> PstmResult<Settle> {
        let now = self.now();
        let mut writes = Vec::new();
        let mut failed_at: Option<(usize, AbortReason)> = None;
        for (i, &s) in shards.iter().enumerate() {
            match epoch.gtms[s].commit_local(txn, now)? {
                LocalCommit::Prepared(w) => writes.extend(w),
                LocalCommit::Aborted(reason, _fx) => {
                    failed_at = Some((i, reason));
                    break;
                }
            }
        }
        if let Some((k, reason)) = failed_at {
            for (i, &s) in shards.iter().enumerate() {
                match i.cmp(&k) {
                    std::cmp::Ordering::Less => {
                        epoch.gtms[s].commit_abort(txn, reason, now)?;
                    }
                    std::cmp::Ordering::Equal => {}
                    std::cmp::Ordering::Greater => {
                        epoch.gtms[s].abort(txn, now)?;
                    }
                }
            }
            return Ok(Settle::Aborted(reason));
        }

        let sst = Sst::new(txn, writes);
        let pre_sst_io = match self.injector.decide(FaultSite::PreSst) {
            pstm_types::FaultDecision::Proceed => false,
            pstm_types::FaultDecision::Io => true,
            _ => {
                // Mirror the front-end: the seam announces itself before
                // the simulated process dies, so a post-mortem over the
                // recorder file can name the crash site.
                epoch.gtms[shards[0]].tracer().emit(
                    now,
                    TraceEvent::FaultInjected {
                        site: FaultSite::PreSst.label(),
                        action: "crash".into(),
                    },
                );
                return Err(PstmError::Crashed(FaultSite::PreSst.label()));
            }
        };
        let mut sst_result = if pre_sst_io {
            Err(PstmError::Io("injected pre-SST fault".into()))
        } else {
            sst.execute(&self.db, &self.bindings)
        };
        let retries = GtmConfig { sst_retries: 2, ..GtmConfig::default() }.sst_retries;
        let mut attempts = 0;
        while attempts < retries && matches!(sst_result, Err(PstmError::Io(_))) {
            attempts += 1;
            self.clock += Duration::from_secs_f64(0.001).0; // virtual back-off
            sst_result = sst.execute(&self.db, &self.bindings);
        }

        let settled_at = self.now();
        let reason = match sst_result {
            Ok(()) => {
                match self.injector.decide(FaultSite::PreFinish) {
                    pstm_types::FaultDecision::Proceed => {}
                    _ => {
                        epoch.gtms[shards[0]].tracer().emit(
                            settled_at,
                            TraceEvent::FaultInjected {
                                site: FaultSite::PreFinish.label(),
                                action: "crash".into(),
                            },
                        );
                        return Err(PstmError::Crashed(FaultSite::PreFinish.label()));
                    }
                }
                for &s in shards {
                    epoch.gtms[s].commit_finish(txn, settled_at)?;
                }
                return Ok(Settle::Committed);
            }
            Err(PstmError::ConstraintViolation { .. }) | Err(PstmError::TypeMismatch { .. }) => {
                AbortReason::Constraint
            }
            Err(PstmError::Io(_)) => AbortReason::SstFailure,
            Err(e @ PstmError::Crashed(_)) => return Err(e),
            Err(e) => return Err(e),
        };
        for &s in shards {
            epoch.gtms[s].commit_abort(txn, reason, settled_at)?;
        }
        Ok(Settle::Aborted(reason))
    }

    /// The front-end's group-commit station, replicated on the virtual
    /// clock: the `pre-sst` seam, [`Gtm::commit_group_local`]'s greedy
    /// cut, one fused flush with transient-I/O retries, the `pre-finish`
    /// seam, then [`Gtm::commit_group_finish`] — looping until the
    /// deferred members (write estimates overlapping an earlier batch)
    /// drain. Settles append to `settles` incrementally so a crash keeps
    /// the accounting of members settled by earlier batches.
    fn commit_group_wave(
        &mut self,
        epoch: &mut Epoch,
        shard: usize,
        idxs: &[usize],
        wave: &[WaveSession],
        settles: &mut Vec<(usize, Settle)>,
    ) -> PstmResult<()> {
        let idx_of = |txn: TxnId| idxs.iter().copied().find(|&i| wave[i].0 == txn);
        let settle_of = |result: CommitResult| match result {
            CommitResult::Committed => Settle::Committed,
            CommitResult::Aborted(reason) => Settle::Aborted(reason),
        };
        let mut remaining: Vec<usize> = idxs.to_vec();
        while !remaining.is_empty() {
            match self.injector.decide(FaultSite::PreSst) {
                pstm_types::FaultDecision::Proceed => {}
                _ => {
                    epoch.gtms[shard].tracer().emit(
                        self.now(),
                        TraceEvent::FaultInjected {
                            site: FaultSite::PreSst.label(),
                            action: "crash".into(),
                        },
                    );
                    return Err(PstmError::Crashed(FaultSite::PreSst.label()));
                }
            }
            let txns: Vec<TxnId> = remaining.iter().map(|&i| wave[i].0).collect();
            let now = self.now();
            let mut local = epoch.gtms[shard].commit_group_local(&txns, now)?;
            for (txn, result) in &local.settled {
                if let Some(i) = idx_of(*txn) {
                    settles.push((i, settle_of(result.clone())));
                }
            }
            let deferred: Vec<usize> = local.deferred.iter().filter_map(|&t| idx_of(t)).collect();
            // Batch-rejected members: solo flush (no lock here — the
            // harness owns every GTM), then settle on the outcome.
            for sst in std::mem::take(&mut local.overflow) {
                let txn = sst.origin;
                let flush = sst.execute(&self.db, &self.bindings);
                let (result, _fx) =
                    epoch.gtms[shard].commit_solo_finish(&sst, flush, self.now())?;
                if let Some(i) = idx_of(txn) {
                    settles.push((i, settle_of(result)));
                }
            }
            let Some(batch) = local.batch.take() else {
                // No batch ⇒ nothing parked ⇒ nothing deferred (the cut
                // only defers against parked members).
                debug_assert!(deferred.is_empty());
                remaining = deferred;
                continue;
            };
            let mut intents: BTreeMap<usize, i64> = BTreeMap::new();
            for m in &batch.members {
                if let Some(i) = idx_of(m.origin) {
                    for (&r, &n) in &wave[i].2 {
                        *intents.entry(r).or_insert(0) += n;
                    }
                }
            }
            self.in_flight = Some(intents);
            self.in_flight_members = batch.len() as u64;
            self.in_flight_txns = batch.members.iter().map(|m| m.origin).collect();
            let mut flush = batch.execute(&self.db, &self.bindings);
            let retries = GtmConfig { sst_retries: 2, ..GtmConfig::default() }.sst_retries;
            let mut attempts = 0;
            while attempts < retries && matches!(flush, Err(PstmError::Io(_))) {
                attempts += 1;
                self.clock += Duration::from_secs_f64(0.001).0; // virtual back-off
                flush = batch.execute(&self.db, &self.bindings);
            }
            if flush.is_ok() {
                // The fused SST is durable but no member has learned the
                // outcome: a crash here must leave the whole group
                // visible exactly once after recovery.
                match self.injector.decide(FaultSite::PreFinish) {
                    pstm_types::FaultDecision::Proceed => {}
                    _ => {
                        epoch.gtms[shard].tracer().emit(
                            self.now(),
                            TraceEvent::FaultInjected {
                                site: FaultSite::PreFinish.label(),
                                action: "crash".into(),
                            },
                        );
                        return Err(PstmError::Crashed(FaultSite::PreFinish.label()));
                    }
                }
            }
            let settled_at = self.now();
            let fin = epoch.gtms[shard].commit_group_finish(batch, flush, settled_at)?;
            self.in_flight = None;
            self.in_flight_members = 1;
            self.in_flight_txns.clear();
            for (txn, result) in fin.settled {
                if let Some(i) = idx_of(txn) {
                    settles.push((i, settle_of(result)));
                }
            }
            // A constraint violation somewhere in the batch: each member
            // re-flushes solo so only the violators abort.
            for sst in fin.reflush {
                let txn = sst.origin;
                let solo = sst.execute(&self.db, &self.bindings);
                let (result, _fx) = epoch.gtms[shard].commit_solo_finish(&sst, solo, self.now())?;
                if let Some(i) = idx_of(txn) {
                    settles.push((i, settle_of(result)));
                }
            }
            remaining = deferred;
        }
        Ok(())
    }
}

/// One session in a wave: txn id, its (sorted, deduped) shard set, its
/// planned `Sub(1)` counts per resource index, and whether it is still
/// alive (not aborted during execution).
type WaveSession = (TxnId, Vec<usize>, BTreeMap<usize, i64>, bool);

/// Runs one full chaos scenario; see the module docs for the protocol and
/// the invariants. Errors only on harness-level engine failures — injected
/// faults, crashes and invariant violations are all *reported*, not
/// returned.
pub fn run_chaos(config: &ChaosConfig) -> PstmResult<ChaosReport> {
    let world = counter_world(config.resources, config.initial)?;
    // Checkpoint the bootstrap so recovery has an image to rebuild from
    // even if the very first WAL append after it is crashed.
    world.db.checkpoint()?;
    let injector = Arc::new(FaultInjector::new(config.plan.clone()));
    world.db.set_fault_hook(Arc::clone(&injector) as _);

    let mut chaos = Chaos {
        db: Arc::clone(&world.db),
        bindings: world.bindings.clone(),
        resources: world.resources.clone(),
        injector,
        config: config.clone(),
        clock: 0,
        acked: vec![0; config.resources],
        in_flight: None,
        in_flight_members: 1,
        in_flight_txns: Vec::new(),
        recorder: None,
        epoch_no: 0,
        recorder_checks: 0,
        epochs: Vec::new(),
        violations: Vec::new(),
    };
    let mut epoch = chaos.new_epoch()?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut committed = 0u64;
    let mut committed_in_doubt = 0u64;
    let mut aborted = 0u64;
    let mut aborted_sst_failure = 0u64;
    let mut lost = 0u64;
    let mut crashes = 0u64;
    let mut recovery_wall_us = Vec::new();
    let mut next_txn = 1u64;
    let mut remaining = config.sessions;

    'run: while remaining > 0 {
        // ---- Open a wave of overlapping sessions ---------------------
        let wave_n = remaining.min(WAVE);
        let mut wave: Vec<WaveSession> = Vec::new();
        for _ in 0..wave_n {
            let txn = TxnId(next_txn);
            next_txn += 1;
            let k = rng.gen_range(1usize..=config.resources.min(3));
            let mut picks: Vec<usize> = (0..config.resources).collect();
            picks.shuffle(&mut rng);
            picks.truncate(k);
            let mut subs: BTreeMap<usize, i64> = BTreeMap::new();
            for op in 0..config.ops_per_session {
                *subs.entry(picks[op % k]).or_insert(0) += 1;
            }
            let mut shards: Vec<usize> =
                picks.iter().map(|&r| chaos.shard_of(chaos.resources[r])).collect();
            shards.sort_unstable();
            shards.dedup();
            wave.push((txn, shards, subs, true));
        }
        remaining -= wave_n;

        // ---- Begin + execute every session (virtual copies overlap) --
        for (txn, shards, subs, alive) in &mut wave {
            for &s in shards.iter() {
                let now = chaos.now();
                epoch.gtms[s].begin(*txn, now)?;
            }
            'ops: for (&r, &n) in subs.iter() {
                let s = chaos.shard_of(chaos.resources[r]);
                for _ in 0..n {
                    let now = chaos.now();
                    let (outcome, _fx) = epoch.gtms[s].execute(
                        *txn,
                        chaos.resources[r],
                        ScalarOp::Sub(Value::Int(1)),
                        now,
                    )?;
                    match outcome {
                        ExecOutcome::Completed(_) => {}
                        ExecOutcome::Waiting | ExecOutcome::Aborted(_) => {
                            // Sub/Sub is compatible under Table I, so a
                            // wait/abort here means a policy knob changed;
                            // release the session everywhere and move on.
                            for &q in shards.iter() {
                                if !(matches!(outcome, ExecOutcome::Aborted(_)) && q == s) {
                                    let now = chaos.now();
                                    epoch.gtms[q].abort(*txn, now)?;
                                }
                            }
                            *alive = false;
                            aborted += 1;
                            break 'ops;
                        }
                    }
                }
            }
        }

        // ---- Commit the wave, one coordinated unit at a time ---------
        // A unit is one commit-protocol run: a solo session through the
        // cross-shard phased path, or (group-commit mode) all of a
        // shard's single-shard sessions fused through the station's
        // split protocol.
        enum Unit {
            Solo(usize),
            Group(usize, Vec<usize>),
        }
        let mut units: Vec<Unit> = Vec::new();
        if chaos.config.group_commit {
            let mut per_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (i, (_, shards, _, alive)) in wave.iter().enumerate() {
                if !*alive {
                    continue;
                }
                if shards.len() == 1 {
                    per_shard.entry(shards[0]).or_default().push(i);
                } else {
                    units.push(Unit::Solo(i));
                }
            }
            units.extend(per_shard.into_iter().map(|(s, idxs)| Unit::Group(s, idxs)));
        } else {
            units.extend(
                wave.iter()
                    .enumerate()
                    .filter(|(_, (_, _, _, alive))| *alive)
                    .map(|(i, _)| Unit::Solo(i)),
            );
        }
        let mut settled_flags = vec![false; wave.len()];
        for unit in units {
            let mut settles: Vec<(usize, Settle)> = Vec::new();
            let result = match &unit {
                Unit::Solo(i) => {
                    let (txn, shards, subs, _) = &wave[*i];
                    chaos.in_flight = Some(subs.clone());
                    chaos.in_flight_members = 1;
                    chaos.in_flight_txns = vec![*txn];
                    chaos.commit_session(&mut epoch, *txn, shards).map(|settle| {
                        settles.push((*i, settle));
                    })
                }
                Unit::Group(shard, idxs) => {
                    chaos.commit_group_wave(&mut epoch, *shard, idxs, &wave, &mut settles)
                }
            };
            // Fold whatever settled before the unit ended — on a crash,
            // members settled by earlier batches of a group keep their
            // acknowledged outcome.
            for (i, settle) in settles {
                settled_flags[i] = true;
                match settle {
                    Settle::Committed => {
                        for (&r, &n) in &wave[i].2 {
                            chaos.acked[r] += n;
                        }
                        committed += 1;
                    }
                    Settle::Aborted(reason) => {
                        aborted += 1;
                        if reason == AbortReason::SstFailure {
                            aborted_sst_failure += 1;
                        }
                    }
                }
            }
            match result {
                Ok(()) => {
                    chaos.in_flight = None;
                    chaos.in_flight_members = 1;
                    chaos.in_flight_txns.clear();
                }
                Err(PstmError::Crashed(_)) => {
                    // The process died. Volatile state (managers, the
                    // wave's other sessions) perishes; the engine
                    // recovers from checkpoint + WAL.
                    crashes += 1;
                    // Every alive-but-unsettled session is lost, pending
                    // reclassification of the in-flight unit below.
                    let stranded_txns: Vec<TxnId> = wave
                        .iter()
                        .enumerate()
                        .filter(|(i, (_, _, _, alive))| *alive && !settled_flags[*i])
                        .map(|(_, (txn, _, _, _))| *txn)
                        .collect();
                    lost += stranded_txns.len() as u64;
                    chaos.close_epoch(&epoch);
                    // Reconstruct the crash picture from the recorder
                    // file *now*, before recovery appends its own events
                    // to the dying epoch's stream — a real post-mortem
                    // reads the file of a process that is already dead.
                    let postmortem = chaos.recorder_postmortem();

                    chaos.injector.disarm();
                    let t0 = pstm_obs::wallclock::wall_now_us();
                    chaos.db.simulate_crash_and_recover()?;
                    let t1 = pstm_obs::wallclock::wall_now_us();
                    recovery_wall_us.push(match (t0, t1) {
                        (Some(a), Some(b)) => Some(b.saturating_sub(a)),
                        _ => None,
                    });

                    chaos.check_ledger(true)?;
                    let unit_survived = chaos.in_flight.take().is_some();
                    if unit_survived {
                        // check_ledger signalled "applied whole": the
                        // unit saw a crash but its fused SST survived —
                        // every member visible exactly once.
                        committed_in_doubt += chaos.in_flight_members;
                        lost -= chaos.in_flight_members;
                    }
                    if let Some(pm) = postmortem {
                        // The recorder's in-doubt classification must
                        // agree with the ledger's: exactly the in-flight
                        // unit's members when the SST survived whole,
                        // empty otherwise.
                        let expect_in_doubt =
                            if unit_survived { chaos.in_flight_txns.clone() } else { Vec::new() };
                        chaos.check_postmortem(&pm, stranded_txns, expect_in_doubt);
                    }
                    chaos.in_flight_members = 1;
                    chaos.in_flight_txns.clear();
                    if crashes < u64::from(config.max_recoveries) {
                        chaos.injector.arm();
                    }
                    epoch = chaos.new_epoch()?;
                    continue 'run;
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ---- Final accounting and certification --------------------------
    chaos.in_flight = None;
    chaos.check_ledger(false)?;
    for (i, gtm) in epoch.gtms.iter().enumerate() {
        if let Err(e) = gtm.check_invariants() {
            chaos.violations.push(format!("shard {i} invariants: {e}"));
        }
    }
    chaos.close_epoch(&epoch);
    // Final quiescent check: with every session settled, the last
    // epoch's post-mortem must reconstruct an empty in-flight picture.
    if let Some(pm) = chaos.recorder_postmortem() {
        chaos.check_postmortem(&pm, Vec::new(), Vec::new());
    }

    let stitched = stitch_streams(&chaos.epochs);
    let certified = match verify_streams(&stitched) {
        Verdict::Serializable(_) => true,
        Verdict::NotSerializable(counterexample) => {
            chaos.violations.push(format!("stitched trace rejected: {counterexample}"));
            false
        }
    };

    let mut final_values = Vec::with_capacity(config.resources);
    for r in 0..config.resources {
        final_values.push(chaos.read_value(r)?);
    }
    let fingerprint = format!(
        "{} | committed={committed} in_doubt={committed_in_doubt} aborted={aborted} \
         lost={lost} crashes={crashes} values={final_values:?}",
        chaos.injector.fingerprint()
    );
    Ok(ChaosReport {
        committed,
        committed_in_doubt,
        aborted,
        aborted_sst_failure,
        lost,
        crashes,
        faults: chaos.injector.schedule(),
        fingerprint,
        violations: chaos.violations,
        certified,
        recovery_wall_us,
        final_values,
        recorder_checks: chaos.recorder_checks,
    })
}

/// The stitched per-epoch streams of a report are internal to `run_chaos`;
/// tests that want to re-verify externally can rerun with the same config
/// (determinism makes the rerun identical). This helper exposes the
/// stitching for such flows.
#[must_use]
pub fn stitch_report_epochs(epochs: &[Vec<TraceStream>]) -> Vec<TraceStream> {
    stitch_streams(epochs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_commits_everything_and_certifies() {
        let report = run_chaos(&ChaosConfig::new(1, FaultPlan::new(1))).unwrap();
        assert_eq!(report.committed, 24);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.aborted, 0);
        assert!(report.clean(), "violations: {:?}", report.violations);
        let total: i64 = report.final_values.iter().map(|v| 10_000 - v).sum();
        assert_eq!(total, 24 * 3, "every Sub(1) accounted for");
    }

    #[test]
    fn wal_append_crash_recovers_with_invariants_intact() {
        let plan = FaultPlan::new(2).crash_on_wal_append(3);
        let report = run_chaos(&ChaosConfig::new(2, plan)).unwrap();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].site, "wal-append");
        assert!(report.clean(), "violations: {:?}", report.violations);
        // Everyone not caught by the crash still finished.
        assert_eq!(report.committed + report.committed_in_doubt + report.aborted + report.lost, 24);
    }

    #[test]
    fn pre_finish_crash_is_committed_in_doubt_exactly_once() {
        let plan = FaultPlan::new(3).crash_at_kind("pre-finish", 2);
        let report = run_chaos(&ChaosConfig::new(3, plan)).unwrap();
        assert_eq!(report.crashes, 1);
        // The fused SST was durable before the crash: the in-flight
        // commit must have survived whole and been folded into the
        // ledger (then re-proven un-duplicated in the next epoch).
        assert_eq!(report.committed_in_doubt, 1);
        assert!(report.clean(), "violations: {:?}", report.violations);
    }

    fn recorder_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pstm-chaos-rec-{}-{name}", std::process::id()))
    }

    #[test]
    fn recorder_mode_cross_checks_every_crash() {
        let dir = recorder_dir("crash");
        let plan = FaultPlan::new(2).crash_on_wal_append(3);
        let report = run_chaos(&ChaosConfig::new(2, plan).with_recorder(&dir)).unwrap();
        assert_eq!(report.crashes, 1);
        assert!(report.clean(), "violations: {:?}", report.violations);
        // One post-mortem per crash plus the final quiescent check.
        assert_eq!(report.recorder_checks, report.crashes + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_mode_agrees_with_ledger_on_in_doubt_survivors() {
        // A pre-finish crash strands a durable-but-unacknowledged commit:
        // the ledger reclassifies it as committed-in-doubt, and the
        // post-mortem must reconstruct exactly that set from the file.
        let dir = recorder_dir("indoubt");
        let plan = FaultPlan::new(3).crash_at_kind("pre-finish", 2);
        let report = run_chaos(&ChaosConfig::new(3, plan).with_recorder(&dir)).unwrap();
        assert_eq!(report.committed_in_doubt, 1);
        assert!(report.clean(), "violations: {:?}", report.violations);
        assert_eq!(report.recorder_checks, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_mode_leaves_the_fingerprint_untouched() {
        let dir = recorder_dir("parity");
        let config = ChaosConfig::new(7, FaultPlan::random(7));
        let dark = run_chaos(&config).unwrap();
        let recorded = run_chaos(&config.clone().with_recorder(&dir)).unwrap();
        assert_eq!(dark.fingerprint, recorded.fingerprint, "recording must not perturb the run");
        assert_eq!(dark.faults, recorded.faults);
        assert_eq!(recorded.recorder_checks, recorded.crashes + 1);
        assert_eq!(dark.recorder_checks, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_seed_and_plan_replay_byte_identically() {
        let config = ChaosConfig::new(7, FaultPlan::random(7));
        let a = run_chaos(&config).unwrap();
        let b = run_chaos(&config).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.faults, b.faults);
        let other = run_chaos(&ChaosConfig::new(8, FaultPlan::random(7))).unwrap();
        assert_ne!(a.fingerprint, other.fingerprint, "different workload seeds should not collide");
    }
}
