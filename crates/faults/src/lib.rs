//! # pstm-faults — deterministic fault injection and crash-recovery chaos
//!
//! The paper hands durability and local consistency to the LDBS and then
//! reasons as if "the SST is always correctly executed". This crate is the
//! adversary for that assumption: a seed-driven [`FaultPlan`] describes
//! *where* in the commit/SST/WAL path faults fire (the labeled
//! [`pstm_types::FaultSite`]s threaded through storage, the GTM and the
//! sharded front-end), a [`FaultInjector`] turns the plan into an installed
//! [`pstm_types::FaultHook`], and [`run_chaos`] drives a full
//! counter-workload through crashes and recoveries, checking two recovery
//! invariants after every restart:
//!
//! 1. **No committed reconciliation result is lost or applied twice.**
//!    Every acknowledged commit's delta is visible in the recovered engine
//!    exactly once, across any number of crash/recovery epochs.
//! 2. **No partial SST is ever visible.** A crash mid-commit leaves the
//!    in-flight transaction's write set either fully applied (the fused
//!    SST reached the log before the crash) or fully absent — never a
//!    prefix, on no subset of shards.
//!
//! Every run is deterministic: the harness runs on a virtual clock, the
//! injector's randomness comes only from the plan's seed, and
//! [`ChaosReport::fingerprint`] is byte-identical across replays of the
//! same `(seed, plan)` pair. The stitched pre/post-crash trace of each run
//! is certified serializable by `pstm-check`
//! ([`pstm_check::stitch_streams`] + [`pstm_check::verify_streams`]).

#![warn(missing_docs)]

pub mod harness;
pub mod injector;
pub mod plan;

pub use harness::{run_chaos, ChaosConfig, ChaosReport};
pub use injector::{FaultInjector, FiredFault};
pub use plan::{FaultPlan, FaultRule, SiteMatcher, Trigger};
