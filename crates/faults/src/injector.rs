//! The [`FaultInjector`]: a [`FaultPlan`] made executable as the one
//! [`FaultHook`] shared by every layer of the stack.
//!
//! The injector is the only stateful piece of the fault subsystem: it
//! counts arrivals per site *kind* (so `commit-local@0` and
//! `commit-local@1` share one "commit-local" arrival stream — a plan
//! written for 1 shard stays meaningful at 8), tracks per-rule fire
//! budgets, owns the plan's seeded generator, and journals every fired
//! fault. The journal, rendered by [`FaultInjector::fingerprint`], is the
//! determinism witness: two runs of the same `(seed, plan)` must produce
//! byte-identical fingerprints.

use crate::plan::{FaultPlan, Trigger};
use parking_lot::Mutex;
use pstm_types::{FaultDecision, FaultHook, FaultSite};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// One fired fault, in firing order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// The shard-qualified site label (`commit-local@2`).
    pub site: String,
    /// The decision's stable name (`io` / `crash` / `torn`).
    pub action: &'static str,
    /// The 1-based arrival count *of this site's kind* when the fault
    /// fired — "the 3rd wal-append".
    pub arrival: u64,
}

struct InjectorState {
    /// Arrivals per site kind, counted while armed.
    arrivals: BTreeMap<&'static str, u64>,
    /// Matching arrivals seen per rule (indexes `plan.rules`).
    rule_hits: Vec<u64>,
    /// Fires spent per rule.
    rule_fires: Vec<u32>,
    rng: StdRng,
    fired: Vec<FiredFault>,
    armed: bool,
}

/// See the module docs. Shared as an `Arc<FaultInjector>` (it is a
/// [`FaultHook`]) across the engine, every GTM shard and the front-end.
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Builds an armed injector for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let n = plan.rules.len();
        let state = InjectorState {
            arrivals: BTreeMap::new(),
            rule_hits: vec![0; n],
            rule_fires: vec![0; n],
            rng: StdRng::seed_from_u64(plan.seed),
            fired: Vec::new(),
            armed: true,
        };
        FaultInjector { plan, state: Mutex::new(state) }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Stops injecting (and counting): every subsequent [`decide`] call
    /// proceeds. Used around bootstrap/recovery phases that must not
    /// consume the plan's arrival budget.
    ///
    /// [`decide`]: FaultHook::decide
    pub fn disarm(&self) {
        self.state.lock().armed = false;
    }

    /// Re-enables injection after [`FaultInjector::disarm`]. Counters are
    /// *not* reset — the plan's arrival counts span the whole run.
    pub fn arm(&self) {
        self.state.lock().armed = true;
    }

    /// The faults fired so far, in order.
    #[must_use]
    pub fn schedule(&self) -> Vec<FiredFault> {
        self.state.lock().fired.clone()
    }

    /// The determinism witness: plan description plus the full fired
    /// schedule, one token per fault. Byte-identical across replays of
    /// the same `(seed, plan)` against the same workload.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let state = self.state.lock();
        let fired: Vec<String> =
            state.fired.iter().map(|f| format!("{}#{}:{}", f.site, f.arrival, f.action)).collect();
        format!("{} | fired=[{}]", self.plan.describe(), fired.join(","))
    }
}

impl FaultHook for FaultInjector {
    fn decide(&self, site: FaultSite) -> FaultDecision {
        let mut state = self.state.lock();
        if !state.armed {
            return FaultDecision::Proceed;
        }
        let arrival = {
            let c = state.arrivals.entry(site.kind()).or_insert(0);
            *c += 1;
            *c
        };
        // Every matching rule counts the arrival and (for probabilistic
        // triggers) consumes its draw, whether or not an earlier rule
        // wins it — so one rule firing never shifts another's schedule.
        let mut wants = vec![false; self.plan.rules.len()];
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if !rule.site.matches(site) {
                continue;
            }
            state.rule_hits[i] += 1;
            let hits = state.rule_hits[i];
            wants[i] = match rule.trigger {
                Trigger::OnHit(n) => hits == n,
                Trigger::EachPpm(p) => state.rng.gen_range(0u32..1_000_000) < p,
            };
        }
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if wants[i] && state.rule_fires[i] < rule.max_fires {
                state.rule_fires[i] += 1;
                state.fired.push(FiredFault {
                    site: site.label(),
                    action: rule.action.name(),
                    arrival,
                });
                return rule.action;
            }
        }
        FaultDecision::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultRule, SiteMatcher};

    #[test]
    fn on_hit_counts_across_shards_of_one_kind() {
        let plan = FaultPlan::new(0).crash_at_kind("commit-local", 3);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(FaultSite::CommitLocal { shard: 0 }), FaultDecision::Proceed);
        assert_eq!(inj.decide(FaultSite::CommitLocal { shard: 1 }), FaultDecision::Proceed);
        // Third arrival at the kind, regardless of shard, fires.
        assert_eq!(inj.decide(FaultSite::CommitLocal { shard: 0 }), FaultDecision::Crash);
        // One-shot: the budget is spent.
        assert_eq!(inj.decide(FaultSite::CommitLocal { shard: 0 }), FaultDecision::Proceed);
        let sched = inj.schedule();
        assert_eq!(sched.len(), 1);
        assert_eq!(
            sched[0],
            FiredFault { site: "commit-local@0".into(), action: "crash", arrival: 3 }
        );
    }

    #[test]
    fn disarm_neither_fires_nor_counts() {
        let plan = FaultPlan::new(0).crash_on_wal_append(2);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(FaultSite::WalAppend), FaultDecision::Proceed); // arrival 1
        inj.disarm();
        for _ in 0..5 {
            assert_eq!(inj.decide(FaultSite::WalAppend), FaultDecision::Proceed);
        }
        inj.arm();
        // The disarmed appends did not advance the count: this is arrival 2.
        assert_eq!(inj.decide(FaultSite::WalAppend), FaultDecision::Crash);
    }

    #[test]
    fn ppm_draws_are_seed_deterministic() {
        let plan = |seed| {
            FaultPlan::new(seed).with_rule(FaultRule {
                site: SiteMatcher::Kind("sst-apply"),
                trigger: Trigger::EachPpm(300_000),
                action: FaultDecision::Io,
                max_fires: u32::MAX,
            })
        };
        let run = |seed| {
            let inj = FaultInjector::new(plan(seed));
            for _ in 0..200 {
                inj.decide(FaultSite::SstApply);
            }
            inj.fingerprint()
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds should diverge");
        let inj = FaultInjector::new(plan(42));
        let mut hits = 0;
        for _ in 0..1_000 {
            if inj.decide(FaultSite::SstApply) == FaultDecision::Io {
                hits += 1;
            }
        }
        assert!((200..400).contains(&hits), "300000ppm fired {hits}/1000 times");
    }

    #[test]
    fn first_matching_rule_wins_the_arrival() {
        let plan = FaultPlan::new(0)
            .with_rule(FaultRule {
                site: SiteMatcher::Kind("pre-sst"),
                trigger: Trigger::OnHit(1),
                action: FaultDecision::Io,
                max_fires: 1,
            })
            .with_rule(FaultRule {
                site: SiteMatcher::Kind("pre-sst"),
                trigger: Trigger::OnHit(1),
                action: FaultDecision::Crash,
                max_fires: 1,
            });
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(FaultSite::PreSst), FaultDecision::Io);
        // The second rule saw the arrival too but the first consumed it;
        // the second's own hit#1 has passed, so it never fires.
        assert_eq!(inj.decide(FaultSite::PreSst), FaultDecision::Proceed);
    }
}
