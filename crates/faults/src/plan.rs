//! Declarative fault plans: *which* labeled sites fail, *when*, and *how*.
//!
//! A [`FaultPlan`] is data, not behaviour — it can be printed, logged next
//! to a failing seed, and replayed. The [`crate::FaultInjector`] gives it
//! behaviour by counting arrivals at each site kind and consulting the
//! plan's rules in order.

use pstm_types::{FaultDecision, FaultSite};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which arrivals a rule applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteMatcher {
    /// Exactly this site — `commit-local@2` matches shard 2 only.
    Exact(FaultSite),
    /// Any site of this kind (shard qualifier ignored): one of
    /// `"wal-append"`, `"sst-apply"`, `"commit-local"`, `"reconcile"`,
    /// `"pre-sst"`, `"pre-finish"`.
    Kind(&'static str),
}

impl SiteMatcher {
    /// Does this matcher cover `site`?
    #[must_use]
    pub fn matches(&self, site: FaultSite) -> bool {
        match self {
            SiteMatcher::Exact(s) => *s == site,
            SiteMatcher::Kind(k) => site.kind() == *k,
        }
    }

    /// Stable text for plan descriptions and fingerprints.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            SiteMatcher::Exact(s) => s.label(),
            SiteMatcher::Kind(k) => format!("{k}@*"),
        }
    }
}

/// When a matching arrival actually fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on the Nth matching arrival (1-based) — "the 3rd WAL append".
    OnHit(u64),
    /// Fire each matching arrival with this probability, in parts per
    /// million, drawn from the plan's seeded generator. `1_000_000` fires
    /// every time (a persistent fault).
    EachPpm(u32),
}

impl Trigger {
    fn describe(&self) -> String {
        match self {
            Trigger::OnHit(n) => format!("hit#{n}"),
            Trigger::EachPpm(p) => format!("each@{p}ppm"),
        }
    }
}

/// One declarative rule: at matching arrivals, per the trigger, do the
/// action — at most `max_fires` times over the whole run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// Which sites this rule watches.
    pub site: SiteMatcher,
    /// Which of the matching arrivals fire.
    pub trigger: Trigger,
    /// What the hook answers when the rule fires.
    pub action: FaultDecision,
    /// Upper bound on fires (`u32::MAX` = unbounded). A crash plan with
    /// `max_fires: 1` injects exactly one crash and then lets the
    /// recovered run finish — the usual chaos-matrix shape.
    pub max_fires: u32,
}

impl FaultRule {
    /// Stable one-line description, e.g. `wal-append@* hit#3 -> torn`.
    #[must_use]
    pub fn describe(&self) -> String {
        format!("{} {} -> {}", self.site.describe(), self.trigger.describe(), self.action.name())
    }
}

/// A seeded set of rules — the full description of a run's adversary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seeds the injector's generator (used only by [`Trigger::EachPpm`]
    /// draws), and is folded into the fingerprint.
    pub seed: u64,
    /// Rules, consulted in order; the first one that fires wins the
    /// arrival.
    pub rules: Vec<FaultRule>,
}

/// The six site kinds, in the order a cross-shard commit reaches them.
pub const SITE_KINDS: [&str; 6] =
    ["commit-local", "reconcile", "pre-sst", "sst-apply", "wal-append", "pre-finish"];

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// Builder: appends one rule.
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Crash on the `n`th WAL append (1-based), once.
    #[must_use]
    pub fn crash_on_wal_append(self, n: u64) -> Self {
        self.with_rule(FaultRule {
            site: SiteMatcher::Exact(FaultSite::WalAppend),
            trigger: Trigger::OnHit(n),
            action: FaultDecision::Crash,
            max_fires: 1,
        })
    }

    /// Tear the `n`th WAL append after `keep` bytes, once — a torn page
    /// write followed by power loss.
    #[must_use]
    pub fn torn_wal_append(self, n: u64, keep: u32) -> Self {
        self.with_rule(FaultRule {
            site: SiteMatcher::Exact(FaultSite::WalAppend),
            trigger: Trigger::OnHit(n),
            action: FaultDecision::Torn { keep },
            max_fires: 1,
        })
    }

    /// Transient I/O failure on each SST attempt with the given
    /// probability (parts per million), unbounded — the knob
    /// `bench_faults` sweeps.
    #[must_use]
    pub fn io_on_sst_apply_each(self, ppm: u32) -> Self {
        self.with_rule(FaultRule {
            site: SiteMatcher::Exact(FaultSite::SstApply),
            trigger: Trigger::EachPpm(ppm),
            action: FaultDecision::Io,
            max_fires: u32::MAX,
        })
    }

    /// Crash at the start of `commit_local` on shard `shard`, on the
    /// `n`th such arrival, once.
    #[must_use]
    pub fn crash_mid_commit_local(self, shard: u32, n: u64) -> Self {
        self.with_rule(FaultRule {
            site: SiteMatcher::Exact(FaultSite::CommitLocal { shard }),
            trigger: Trigger::OnHit(n),
            action: FaultDecision::Crash,
            max_fires: 1,
        })
    }

    /// The paper's "link drops mid-reconcile": a transient I/O failure on
    /// the `n`th reconciliation arrival on shard `shard`, once.
    #[must_use]
    pub fn link_down_mid_reconcile(self, shard: u32, n: u64) -> Self {
        self.with_rule(FaultRule {
            site: SiteMatcher::Exact(FaultSite::Reconcile { shard }),
            trigger: Trigger::OnHit(n),
            action: FaultDecision::Io,
            max_fires: 1,
        })
    }

    /// Crash on the `n`th arrival at any site of `kind`, once. The
    /// generic form behind the crash-at-every-labeled-point matrix.
    #[must_use]
    pub fn crash_at_kind(self, kind: &'static str, n: u64) -> Self {
        self.with_rule(FaultRule {
            site: SiteMatcher::Kind(kind),
            trigger: Trigger::OnHit(n),
            action: FaultDecision::Crash,
            max_fires: 1,
        })
    }

    /// A random plan for the chaos matrix: 1–3 rules over random site
    /// kinds, triggers and actions, derived entirely from `seed` (the
    /// same seed always yields the same plan).
    #[must_use]
    pub fn random(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let n_rules = rng.gen_range(1usize..=3);
        let mut plan = FaultPlan::new(seed);
        for _ in 0..n_rules {
            let kind = *SITE_KINDS.choose(&mut rng).expect("SITE_KINDS non-empty");
            let trigger = if rng.gen_bool(0.6) {
                Trigger::OnHit(rng.gen_range(1u64..=12))
            } else {
                Trigger::EachPpm(rng.gen_range(10_000u32..=250_000))
            };
            let action = match rng.gen_range(0u32..4) {
                0 => FaultDecision::Io,
                1 if kind == "wal-append" => FaultDecision::Torn { keep: rng.gen_range(1u32..=16) },
                _ => FaultDecision::Crash,
            };
            // Unbounded crashes would prevent the run from ever finishing;
            // only transient I/O may repeat.
            let max_fires = match action {
                FaultDecision::Io => rng.gen_range(1u32..=8),
                _ => 1,
            };
            plan = plan.with_rule(FaultRule {
                site: SiteMatcher::Kind(kind),
                trigger,
                action,
                max_fires,
            });
        }
        plan
    }

    /// Stable multi-line description: the DSL form documented in
    /// `EXPERIMENTS.md` §C4 (one `describe()`d rule per line).
    #[must_use]
    pub fn describe(&self) -> String {
        let rules: Vec<String> = self.rules.iter().map(FaultRule::describe).collect();
        format!("seed={} [{}]", self.seed, rules.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matchers_respect_shard_qualifiers() {
        let exact = SiteMatcher::Exact(FaultSite::CommitLocal { shard: 2 });
        assert!(exact.matches(FaultSite::CommitLocal { shard: 2 }));
        assert!(!exact.matches(FaultSite::CommitLocal { shard: 3 }));
        let kind = SiteMatcher::Kind("commit-local");
        assert!(kind.matches(FaultSite::CommitLocal { shard: 3 }));
        assert!(!kind.matches(FaultSite::PreSst));
    }

    #[test]
    fn builders_compose_and_describe() {
        let plan = FaultPlan::new(7).torn_wal_append(3, 5).io_on_sst_apply_each(50_000);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(
            plan.describe(),
            "seed=7 [wal-append hit#3 -> torn; sst-apply each@50000ppm -> io]"
        );
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        for seed in 0..50 {
            let a = FaultPlan::random(seed);
            let b = FaultPlan::random(seed);
            assert_eq!(a, b, "seed {seed} produced two different plans");
            assert!((1..=3).contains(&a.rules.len()));
            for rule in &a.rules {
                if !matches!(rule.action, FaultDecision::Io) {
                    assert_eq!(rule.max_fires, 1, "non-transient faults must be one-shot");
                }
            }
        }
        assert_ne!(FaultPlan::random(1), FaultPlan::random(2));
    }
}
