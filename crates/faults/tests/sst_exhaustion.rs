//! SST retry exhaustion under injected persistent faults, driven through
//! the *production* coordinator (`pstm-front`'s phased cross-shard
//! commit) rather than the chaos harness's replica of it.
//!
//! Contract under test: when every SST attempt fails with a transient
//! I/O error, sessions must come back as typed aborts
//! ([`AbortReason::SstFailure`], or [`AbortReason::Constraint`] for CHECK
//! violations) — never a panic, and never a leaked shard lock
//! (`lock_shards_ascending`'s guards must fully unwind, observed via
//! [`ShardedFront::shards_unlocked`]).

use pstm_core::gtm::CommitResult;
use pstm_faults::{FaultInjector, FaultPlan};
use pstm_front::{FrontConfig, SessionOutcome, ShardedFront};
use pstm_obs::{RingSink, Tracer};
use pstm_types::{AbortReason, PstmError, ScalarOp, Value};
use pstm_workload::counter_world;
use std::sync::Arc;

fn front_over(
    resources: usize,
    initial: i64,
    shards: usize,
) -> (ShardedFront, Vec<pstm_types::ResourceId>) {
    let world = counter_world(resources, initial).unwrap();
    let mut config = FrontConfig { shards, ..FrontConfig::default() };
    config.gtm.sst_retries = 2; // a real retry budget to exhaust
    let front = ShardedFront::with_shard_tracers(world.db, world.bindings, config, |_| {
        Tracer::with_sink(Box::new(RingSink::new(1 << 18)))
    });
    (front, world.resources)
}

/// A cross-shard op set: one `Sub(1)` on each of the first four
/// resources (they land on different shards when `shards == 4`).
fn run_ops(front: &ShardedFront, resources: &[pstm_types::ResourceId]) -> pstm_front::Session {
    let mut session = front.session();
    for r in &resources[..4] {
        match session.execute(*r, ScalarOp::Sub(Value::Int(1))).unwrap() {
            SessionOutcome::Value(_) => {}
            SessionOutcome::Aborted(reason) => panic!("execute aborted: {reason:?}"),
        }
    }
    session
}

#[test]
fn persistent_io_exhausts_retries_into_sst_failure_without_leaking_locks() {
    let (front, resources) = front_over(8, 1_000, 4);
    let injector = Arc::new(FaultInjector::new(FaultPlan::new(11).io_on_sst_apply_each(1_000_000)));
    front.set_fault_hook(Arc::clone(&injector) as _);

    for _ in 0..6 {
        let mut session = run_ops(&front, &resources);
        let result = session.commit().expect("typed abort, not an engine error");
        assert_eq!(result, CommitResult::Aborted(AbortReason::SstFailure));
        assert!(front.shards_unlocked(), "a shard lock leaked past the unwound commit");
        front.check_invariants().expect("per-shard invariants after exhausted retries");
    }
    // Nothing reached the engine: the write set is all-or-nothing and
    // every attempt failed.
    for r in &resources[..4] {
        assert_eq!(front.resource_value(*r).unwrap(), Value::Int(1_000));
    }
    // Shard-summed counters: each of the 6 sessions aborts on all 4 of
    // its shards, and each commit burns its 2-attempt retry budget
    // (counted once, in the session's home shard).
    let stats = front.stats();
    assert_eq!(stats.aborted_sst_failure, 24);
    assert_eq!(stats.sst_retries, 12, "each commit should burn its full retry budget");

    // The fault is transient by nature: disarm the injector and the very
    // next cross-shard commit goes through.
    injector.disarm();
    let mut session = run_ops(&front, &resources);
    assert_eq!(session.commit().unwrap(), CommitResult::Committed);
    assert!(front.shards_unlocked());
    for r in &resources[..4] {
        assert_eq!(front.resource_value(*r).unwrap(), Value::Int(999));
    }
    front.verify_serializable().expect("committed history stays serializable");
}

#[test]
fn constraint_violations_surface_as_typed_aborts_not_panics() {
    // initial = 0 with a `>= 0` CHECK: the first Sub must die at commit
    // with a Constraint abort (reconciliation result rejected by the
    // engine), with no faults installed at all.
    let (front, resources) = front_over(8, 0, 4);
    let mut session = run_ops(&front, &resources);
    let result = session.commit().unwrap();
    assert_eq!(result, CommitResult::Aborted(AbortReason::Constraint));
    assert!(front.shards_unlocked());
    front.check_invariants().unwrap();
    for r in &resources[..4] {
        assert_eq!(front.resource_value(*r).unwrap(), Value::Int(0), "CHECK held");
    }
}

#[test]
fn injected_crash_mid_commit_unwinds_the_locks_before_poisoning() {
    let (front, resources) = front_over(8, 1_000, 4);
    let injector = Arc::new(FaultInjector::new(FaultPlan::new(13).crash_at_kind("pre-sst", 1)));
    front.set_fault_hook(Arc::clone(&injector) as _);

    let mut session = run_ops(&front, &resources);
    match session.commit() {
        Err(PstmError::Crashed(site)) => assert_eq!(site, "pre-sst"),
        other => panic!("expected a simulated crash, got {other:?}"),
    }
    // The simulated process death must still release the shard mutexes —
    // the front-end is now garbage (transactions parked in Committing),
    // but a real restart can only happen if nothing is left locked.
    assert!(front.shards_unlocked(), "crash left a shard lock held");
    // Nothing was submitted to the engine before the pre-sst crash.
    for r in &resources[..4] {
        assert_eq!(front.resource_value(*r).unwrap(), Value::Int(1_000));
    }
}
