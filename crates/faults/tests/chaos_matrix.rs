//! The crash-recovery chaos matrix: every labeled point in the commit
//! path gets crashed (deterministically and property-driven), random
//! seeded fault plans run at scale, and identical `(seed, plan)` pairs
//! are proven to replay byte-identically.
//!
//! Every run in this file must come back [`ChaosReport::clean`]: both
//! recovery invariants held after every crash (no acked commit lost or
//! duplicated; no partial SST visible) and `pstm-check` certified the
//! stitched pre+post-crash trace serializable.
//!
//! The matrix runs with the flight recorder **on**: every epoch is also
//! written to a durable recorder file, and at every crash the harness
//! reconstructs the crash picture from the file alone
//! (`pstm_obs::postmortem`) and asserts the reconstructed in-flight and
//! in-doubt sets match the fault ledger's classification exactly —
//! mismatches surface as violations and fail `assert_clean`.

use proptest::prelude::*;
use pstm_faults::plan::SITE_KINDS;
use pstm_faults::{run_chaos, ChaosConfig, FaultPlan};
use std::path::PathBuf;

/// Per-test scratch directory for flight-recorder files; recreated by
/// each run (`Recorder::create` truncates), removed when the test ends.
fn recorder_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pstm-chaos-matrix-{}-{tag}", std::process::id()))
}

/// Shared assertion: the run held its invariants, its stitched trace
/// certified, and every session is accounted for exactly once.
fn assert_clean(report: &pstm_faults::ChaosReport, config: &ChaosConfig, context: &str) {
    assert!(
        report.violations.is_empty(),
        "{context}: invariant violations {:?}\n  fingerprint: {}",
        report.violations,
        report.fingerprint
    );
    assert!(report.certified, "{context}: stitched trace not certified");
    assert_eq!(
        report.committed + report.committed_in_doubt + report.aborted + report.lost,
        config.sessions as u64,
        "{context}: sessions leaked or double-counted ({})",
        report.fingerprint
    );
    if config.recorder_dir.is_some() {
        // Recorder mode: one post-mortem-vs-ledger cross-check per crash
        // plus the final quiescent check must all have run (mismatches
        // land in `violations`, already asserted empty above).
        assert_eq!(
            report.recorder_checks,
            report.crashes + 1,
            "{context}: post-mortem cross-checks missing"
        );
    }
}

/// Crash at every labeled point, deterministically: all six site kinds ×
/// arrival ordinals 1..=8 (48 distinct `(seed, plan)` runs). Arrivals
/// past what the workload produces simply never fire — the run must
/// still be clean.
#[test]
fn crash_at_every_labeled_point_recovers_clean() {
    let mut crashes_seen = 0u64;
    for (k, kind) in SITE_KINDS.iter().enumerate() {
        for n in 1..=8u64 {
            let seed = 1000 + (k as u64) * 100 + n;
            let plan = FaultPlan::new(seed).crash_at_kind(kind, n);
            let config = ChaosConfig::new(seed, plan).with_recorder(recorder_dir("crash-points"));
            let report = run_chaos(&config).unwrap();
            assert!(report.crashes <= 1, "one-shot crash rule fired twice");
            crashes_seen += report.crashes;
            assert_clean(&report, &config, &format!("crash@{kind}#{n}"));
        }
    }
    // The matrix must actually exercise crashes at scale, not vacuously
    // pass because no arrival ever matched.
    assert!(crashes_seen >= 30, "only {crashes_seen}/48 plans produced a crash");
    std::fs::remove_dir_all(recorder_dir("crash-points")).ok();
}

/// Torn-page sweep: tear the WAL frame at every prefix length on several
/// appends. Recovery must drop the torn record (and only it).
#[test]
fn torn_wal_writes_at_every_prefix_length_recover_clean() {
    for keep in 1..=16u32 {
        let seed = 2000 + u64::from(keep);
        let plan = FaultPlan::new(seed).torn_wal_append(1 + u64::from(keep % 5), keep);
        let config = ChaosConfig::new(seed, plan).with_recorder(recorder_dir("torn"));
        let report = run_chaos(&config).unwrap();
        assert_eq!(report.crashes, 1, "torn write must crash the process");
        assert_eq!(report.faults[0].action, "torn");
        assert_clean(&report, &config, &format!("torn keep={keep}"));
    }
    std::fs::remove_dir_all(recorder_dir("torn")).ok();
}

/// The random chaos matrix: 96 seeds, each deriving a random 1–3 rule
/// plan (crashes, torn writes, probabilistic transient I/O) and an
/// independent workload shape.
#[test]
fn random_chaos_matrix_holds_invariants() {
    let mut total_crashes = 0u64;
    let mut total_faults = 0usize;
    for seed in 0..96u64 {
        let config =
            ChaosConfig::new(seed, FaultPlan::random(seed)).with_recorder(recorder_dir("random"));
        let report = run_chaos(&config).unwrap();
        total_crashes += report.crashes;
        total_faults += report.faults.len();
        assert_clean(&report, &config, &format!("random seed={seed}"));
    }
    assert!(total_faults > 96, "matrix too quiet: {total_faults} faults over 96 runs");
    assert!(total_crashes > 20, "matrix too gentle: {total_crashes} crashes over 96 runs");
    std::fs::remove_dir_all(recorder_dir("random")).ok();
}

/// Fault-free group-commit run: single-shard sessions fuse into
/// per-shard batches and everything still commits exactly once.
#[test]
fn group_commit_fault_free_run_commits_everything() {
    let config = ChaosConfig::new(1, FaultPlan::new(1)).with_group_commit();
    let report = run_chaos(&config).unwrap();
    assert_eq!(report.committed, 24);
    assert_eq!(report.crashes, 0);
    assert_eq!(report.aborted, 0);
    assert!(report.clean(), "violations: {:?}", report.violations);
}

/// The crash matrix again, but with the group-commit protocol: all six
/// site kinds × arrival ordinals, each crashing a run whose single-shard
/// sessions commit through fused batches. A crash mid-batch — including
/// inside the batch's WAL appends — must never surface a member subset
/// or another transaction's frames after recovery: either the whole
/// fused SST survives or none of it does.
#[test]
fn group_commit_crash_matrix_recovers_clean() {
    let mut crashes_seen = 0u64;
    let mut whole_batches_in_doubt = 0u64;
    for (k, kind) in SITE_KINDS.iter().enumerate() {
        for n in 1..=8u64 {
            let seed = 5000 + (k as u64) * 100 + n;
            let plan = FaultPlan::new(seed).crash_at_kind(kind, n);
            let config = ChaosConfig::new(seed, plan)
                .with_group_commit()
                .with_recorder(recorder_dir("group-crash"));
            let report = run_chaos(&config).unwrap();
            assert!(report.crashes <= 1, "one-shot crash rule fired twice");
            crashes_seen += report.crashes;
            if report.committed_in_doubt > 1 {
                whole_batches_in_doubt += 1;
            }
            assert_clean(&report, &config, &format!("group crash@{kind}#{n}"));
        }
    }
    std::fs::remove_dir_all(recorder_dir("group-crash")).ok();
    assert!(crashes_seen >= 30, "only {crashes_seen}/48 grouped plans produced a crash");
    // The matrix must actually crash *fused* flushes, not only singleton
    // batches: at least one crash between the group's durable SST and
    // its finish must have reclassified a whole multi-member batch as
    // committed-in-doubt (visible exactly once, as a unit).
    assert!(whole_batches_in_doubt >= 1, "no crash ever caught a multi-member batch in flight");
}

/// Torn WAL tail under group commit: the fused batch's frames are torn
/// at every prefix length and the process killed. Recovery must drop the
/// batch whole or keep it whole — never a prefix of its members.
#[test]
fn torn_group_tail_at_every_prefix_length_recovers_clean() {
    for keep in 1..=16u32 {
        let seed = 6000 + u64::from(keep);
        let plan = FaultPlan::new(seed).torn_wal_append(1 + u64::from(keep % 5), keep);
        let config = ChaosConfig::new(seed, plan)
            .with_group_commit()
            .with_recorder(recorder_dir("group-torn"));
        let report = run_chaos(&config).unwrap();
        assert_eq!(report.crashes, 1, "torn write must crash the process");
        assert_eq!(report.faults[0].action, "torn");
        assert_clean(&report, &config, &format!("group torn keep={keep}"));
    }
    std::fs::remove_dir_all(recorder_dir("group-torn")).ok();
}

/// The random chaos matrix with grouping on: 48 random adversaries
/// against the batched commit path.
#[test]
fn random_chaos_matrix_with_group_commit_holds_invariants() {
    let mut total_crashes = 0u64;
    for seed in 100..148u64 {
        let config = ChaosConfig::new(seed, FaultPlan::random(seed))
            .with_group_commit()
            .with_recorder(recorder_dir("group-random"));
        let report = run_chaos(&config).unwrap();
        total_crashes += report.crashes;
        assert_clean(&report, &config, &format!("group random seed={seed}"));
    }
    assert!(total_crashes > 10, "matrix too gentle: {total_crashes} crashes over 48 runs");
    std::fs::remove_dir_all(recorder_dir("group-random")).ok();
}

/// Group-commit runs replay byte-identically too.
#[test]
fn group_commit_replays_byte_identically() {
    for seed in [0u64, 11, 57] {
        let config = ChaosConfig::new(seed, FaultPlan::random(seed)).with_group_commit();
        let a = run_chaos(&config).unwrap();
        let b = run_chaos(&config).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "grouped seed {seed} diverged");
        assert_eq!(a.faults, b.faults, "grouped seed {seed} fault schedule diverged");
    }
}

/// Determinism: the same `(seed, plan)` must replay with a byte-identical
/// fault schedule and fingerprint; workload seed and plan seed must both
/// matter.
#[test]
fn identical_seeds_replay_byte_identically() {
    for seed in [0u64, 3, 11, 29, 57, 91] {
        let config = ChaosConfig::new(seed, FaultPlan::random(seed));
        let a = run_chaos(&config).unwrap();
        let b = run_chaos(&config).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed} diverged");
        assert_eq!(a.faults, b.faults, "seed {seed} fault schedule diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary seeds and fault plans: a crash at an arbitrary labeled
    /// point and arrival, stacked on a random background plan. After
    /// recovery both invariants must hold and the stitched trace must
    /// certify.
    #[test]
    fn prop_arbitrary_crash_points_recover_clean(
        seed in 0u64..10_000,
        kind_idx in 0usize..6,
        arrival in 1u64..12,
    ) {
        let plan = FaultPlan::random(seed).crash_at_kind(SITE_KINDS[kind_idx], arrival);
        let config =
            ChaosConfig::new(seed, plan).with_recorder(recorder_dir("prop-crash"));
        let report = run_chaos(&config).unwrap();
        prop_assert!(
            report.violations.is_empty(),
            "violations {:?} ({})", report.violations, report.fingerprint
        );
        prop_assert!(report.certified, "stitched trace not certified");
        prop_assert_eq!(
            report.committed + report.committed_in_doubt + report.aborted + report.lost,
            config.sessions as u64
        );
    }

    /// Persistent transient I/O at arbitrary rates never breaks the
    /// ledger: faults translate into bounded retries and `SstFailure`
    /// aborts, not corruption.
    #[test]
    fn prop_transient_io_rates_never_corrupt(
        seed in 0u64..10_000,
        ppm in 1_000u32..600_000,
    ) {
        let plan = FaultPlan::new(seed).io_on_sst_apply_each(ppm);
        let config = ChaosConfig::new(seed, plan);
        let report = run_chaos(&config).unwrap();
        prop_assert!(report.violations.is_empty(), "violations {:?}", report.violations);
        prop_assert!(report.certified);
        prop_assert_eq!(report.crashes, 0, "transient I/O must never crash the process");
        prop_assert_eq!(report.aborted, report.aborted_sst_failure,
            "all aborts under this plan must be SST failures");
    }
}
