//! An in-memory B-tree secondary index mapping [`Value`] keys to posting
//! lists of [`RowId`]s.
//!
//! A genuine B-tree (CLRS flavour: preemptive splits on the way down for
//! insertion, sibling borrow/merge on the way down for deletion), not a
//! wrapper over `std::collections::BTreeMap` — `Value` has no `Ord` and
//! the index must support non-unique keys with posting lists. Invariants
//! (checked by [`BTreeIndex::check_invariants`] in tests):
//!
//! 1. keys within a node strictly increase;
//! 2. every leaf sits at the same depth;
//! 3. every non-root node holds at least `MIN_KEYS` keys;
//! 4. internal nodes have `keys.len() + 1` children;
//! 5. all keys in `children[i]` sort below `keys[i]` and above
//!    `keys[i-1]`.

use crate::row::RowId;
use pstm_types::Value;
use std::cmp::Ordering;
use std::ops::Bound;

/// Minimum degree `t`. Nodes hold between `t-1` and `2t-1` keys.
const T: usize = 8;
const MIN_KEYS: usize = T - 1;
const MAX_KEYS: usize = 2 * T - 1;

type Posting = Vec<RowId>;

#[derive(Debug, Default)]
struct Node {
    keys: Vec<Value>,
    postings: Vec<Posting>,
    /// Empty for leaves.
    children: Vec<Node>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn is_full(&self) -> bool {
        self.keys.len() == MAX_KEYS
    }

    /// Binary search by the total key order.
    fn search(&self, key: &Value) -> Result<usize, usize> {
        self.keys.binary_search_by(|k| k.key_cmp(key))
    }
}

/// A non-unique secondary index.
#[derive(Debug, Default)]
pub struct BTreeIndex {
    root: Node,
    distinct: usize,
    entries: usize,
}

impl BTreeIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        self.distinct
    }

    /// Total number of `(key, rowid)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Adds `rid` to the posting list of `key`. Returns `false` if the
    /// exact `(key, rid)` pair was already present.
    pub fn insert(&mut self, key: Value, rid: RowId) -> bool {
        if self.root.is_full() {
            let mut new_root = Node::default();
            new_root.children.push(std::mem::take(&mut self.root));
            split_child(&mut new_root, 0);
            self.root = new_root;
        }
        let inserted = insert_nonfull(&mut self.root, key, rid, &mut self.distinct);
        if inserted {
            self.entries += 1;
        }
        inserted
    }

    /// Removes `rid` from the posting list of `key`; drops the key when
    /// its posting list empties. Returns `false` if the pair was absent.
    pub fn remove(&mut self, key: &Value, rid: RowId) -> bool {
        // First trim the posting list; only a now-empty list triggers
        // structural deletion.
        match prune_posting(&mut self.root, key, rid) {
            PruneResult::Absent => false,
            PruneResult::Removed => {
                self.entries -= 1;
                true
            }
            PruneResult::KeyEmpty => {
                self.entries -= 1;
                self.distinct -= 1;
                delete_key(&mut self.root, key);
                if self.root.keys.is_empty() && !self.root.is_leaf() {
                    self.root = self.root.children.remove(0);
                }
                true
            }
        }
    }

    /// The posting list for `key` (empty slice if absent).
    #[must_use]
    pub fn get(&self, key: &Value) -> &[RowId] {
        let mut node = &self.root;
        loop {
            match node.search(key) {
                Ok(i) => return &node.postings[i],
                Err(i) => {
                    if node.is_leaf() {
                        return &[];
                    }
                    node = &node.children[i];
                }
            }
        }
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &Value) -> bool {
        !self.get(key).is_empty()
    }

    /// In-order `(key, rid)` pairs with keys in `[lo, hi]` per the given
    /// bounds.
    #[must_use]
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<(Value, RowId)> {
        let mut out = Vec::new();
        collect_range(&self.root, lo, hi, &mut out);
        out
    }

    /// All entries in key order.
    #[must_use]
    pub fn iter_all(&self) -> Vec<(Value, RowId)> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Verifies the structural invariants; returns a description of the
    /// first violation. Test-oriented but cheap enough to keep available.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut leaf_depth = None;
        check_node(&self.root, true, 0, &mut leaf_depth, None, None)?;
        let counted: usize = count_entries(&self.root);
        if counted != self.entries {
            return Err(format!("entry count {counted} != tracked {}", self.entries));
        }
        let distinct: usize = count_keys(&self.root);
        if distinct != self.distinct {
            return Err(format!("distinct count {distinct} != tracked {}", self.distinct));
        }
        Ok(())
    }
}

fn count_entries(n: &Node) -> usize {
    n.postings.iter().map(Vec::len).sum::<usize>()
        + n.children.iter().map(count_entries).sum::<usize>()
}

fn count_keys(n: &Node) -> usize {
    n.keys.len() + n.children.iter().map(count_keys).sum::<usize>()
}

fn check_node(
    n: &Node,
    is_root: bool,
    depth: usize,
    leaf_depth: &mut Option<usize>,
    lo: Option<&Value>,
    hi: Option<&Value>,
) -> Result<(), String> {
    if !is_root && n.keys.len() < MIN_KEYS {
        return Err(format!("underfull node at depth {depth}: {} keys", n.keys.len()));
    }
    if n.keys.len() > MAX_KEYS {
        return Err(format!("overfull node at depth {depth}"));
    }
    if n.keys.len() != n.postings.len() {
        return Err("keys/postings length mismatch".into());
    }
    for w in n.keys.windows(2) {
        if w[0].key_cmp(&w[1]) != Ordering::Less {
            return Err(format!("keys out of order: {} !< {}", w[0], w[1]));
        }
    }
    for k in &n.keys {
        if let Some(lo) = lo {
            if k.key_cmp(lo) != Ordering::Greater {
                return Err(format!("key {k} violates lower separator {lo}"));
            }
        }
        if let Some(hi) = hi {
            if k.key_cmp(hi) != Ordering::Less {
                return Err(format!("key {k} violates upper separator {hi}"));
            }
        }
    }
    for p in &n.postings {
        if p.is_empty() {
            return Err("empty posting list".into());
        }
    }
    if n.is_leaf() {
        match leaf_depth {
            None => *leaf_depth = Some(depth),
            Some(d) if *d != depth => return Err(format!("leaf depth {depth} != {d}")),
            _ => {}
        }
        Ok(())
    } else {
        if n.children.len() != n.keys.len() + 1 {
            return Err(format!(
                "internal node has {} children for {} keys",
                n.children.len(),
                n.keys.len()
            ));
        }
        for (i, c) in n.children.iter().enumerate() {
            let clo = if i == 0 { lo } else { Some(&n.keys[i - 1]) };
            let chi = if i == n.keys.len() { hi } else { Some(&n.keys[i]) };
            check_node(c, false, depth + 1, leaf_depth, clo, chi)?;
        }
        Ok(())
    }
}

/// Splits the full child `i` of `parent`, lifting the median.
fn split_child(parent: &mut Node, i: usize) {
    let child = &mut parent.children[i];
    debug_assert!(child.is_full());
    let mid = T - 1;
    let right_keys = child.keys.split_off(mid + 1);
    let right_postings = child.postings.split_off(mid + 1);
    let median_key = child.keys.pop().expect("mid key");
    let median_posting = child.postings.pop().expect("mid posting");
    let right_children =
        if child.is_leaf() { Vec::new() } else { child.children.split_off(mid + 1) };
    let right = Node { keys: right_keys, postings: right_postings, children: right_children };
    parent.keys.insert(i, median_key);
    parent.postings.insert(i, median_posting);
    parent.children.insert(i + 1, right);
}

fn insert_nonfull(node: &mut Node, key: Value, rid: RowId, distinct: &mut usize) -> bool {
    match node.search(&key) {
        Ok(i) => {
            let posting = &mut node.postings[i];
            if posting.contains(&rid) {
                false
            } else {
                posting.push(rid);
                posting.sort_unstable();
                true
            }
        }
        Err(i) => {
            if node.is_leaf() {
                node.keys.insert(i, key);
                node.postings.insert(i, vec![rid]);
                *distinct += 1;
                true
            } else {
                let mut i = i;
                if node.children[i].is_full() {
                    split_child(node, i);
                    match key.key_cmp(&node.keys[i]) {
                        Ordering::Equal => {
                            let posting = &mut node.postings[i];
                            if posting.contains(&rid) {
                                return false;
                            }
                            posting.push(rid);
                            posting.sort_unstable();
                            return true;
                        }
                        Ordering::Greater => i += 1,
                        Ordering::Less => {}
                    }
                }
                insert_nonfull(&mut node.children[i], key, rid, distinct)
            }
        }
    }
}

enum PruneResult {
    Absent,
    Removed,
    KeyEmpty,
}

/// Removes `rid` from the posting of `key` wherever it lives, without
/// restructuring. Reports whether the posting list emptied.
fn prune_posting(node: &mut Node, key: &Value, rid: RowId) -> PruneResult {
    match node.search(key) {
        Ok(i) => {
            let posting = &mut node.postings[i];
            match posting.iter().position(|r| *r == rid) {
                None => PruneResult::Absent,
                Some(p) => {
                    posting.remove(p);
                    if posting.is_empty() {
                        PruneResult::KeyEmpty
                    } else {
                        PruneResult::Removed
                    }
                }
            }
        }
        Err(i) => {
            if node.is_leaf() {
                PruneResult::Absent
            } else {
                prune_posting(&mut node.children[i], key, rid)
            }
        }
    }
}

/// CLRS B-tree deletion of a key whose posting list has emptied. The key
/// is guaranteed present (prune_posting found it); its posting list may be
/// empty, which is fine — we delete key and posting together.
fn delete_key(node: &mut Node, key: &Value) {
    match node.search(key) {
        Ok(i) => {
            if node.is_leaf() {
                node.keys.remove(i);
                node.postings.remove(i);
            } else if node.children[i].keys.len() > MIN_KEYS {
                // Replace with predecessor.
                let (pk, pp) = take_max(&mut node.children[i]);
                node.keys[i] = pk;
                node.postings[i] = pp;
            } else if node.children[i + 1].keys.len() > MIN_KEYS {
                // Replace with successor.
                let (sk, sp) = take_min(&mut node.children[i + 1]);
                node.keys[i] = sk;
                node.postings[i] = sp;
            } else {
                // Merge children around the key, then delete from the
                // merged child.
                merge_children(node, i);
                delete_key(&mut node.children[i], key);
            }
        }
        Err(i) => {
            debug_assert!(!node.is_leaf(), "key vanished before structural delete");
            let i = ensure_child_can_lose(node, i);
            delete_key(&mut node.children[i], key);
        }
    }
}

/// Guarantees `children[i]` has more than MIN_KEYS keys before recursing,
/// borrowing from a sibling or merging. Returns the (possibly shifted)
/// child index to descend into.
fn ensure_child_can_lose(node: &mut Node, i: usize) -> usize {
    if node.children[i].keys.len() > MIN_KEYS {
        return i;
    }
    if i > 0 && node.children[i - 1].keys.len() > MIN_KEYS {
        // Rotate right: parent separator moves down, left sibling's max
        // moves up.
        let (k, p, child_opt) = {
            let left = &mut node.children[i - 1];
            let k = left.keys.pop().expect("non-empty left");
            let p = left.postings.pop().expect("non-empty left");
            let c = if left.is_leaf() { None } else { Some(left.children.pop().expect("child")) };
            (k, p, c)
        };
        let sep_k = std::mem::replace(&mut node.keys[i - 1], k);
        let sep_p = std::mem::replace(&mut node.postings[i - 1], p);
        let child = &mut node.children[i];
        child.keys.insert(0, sep_k);
        child.postings.insert(0, sep_p);
        if let Some(c) = child_opt {
            child.children.insert(0, c);
        }
        i
    } else if i < node.children.len() - 1 && node.children[i + 1].keys.len() > MIN_KEYS {
        // Rotate left.
        let (k, p, child_opt) = {
            let right = &mut node.children[i + 1];
            let k = right.keys.remove(0);
            let p = right.postings.remove(0);
            let c = if right.is_leaf() { None } else { Some(right.children.remove(0)) };
            (k, p, c)
        };
        let sep_k = std::mem::replace(&mut node.keys[i], k);
        let sep_p = std::mem::replace(&mut node.postings[i], p);
        let child = &mut node.children[i];
        child.keys.push(sep_k);
        child.postings.push(sep_p);
        if let Some(c) = child_opt {
            child.children.push(c);
        }
        i
    } else if i > 0 {
        merge_children(node, i - 1);
        i - 1
    } else {
        merge_children(node, i);
        i
    }
}

/// Merges `children[i]`, separator `keys[i]`, and `children[i+1]` into
/// `children[i]`.
fn merge_children(node: &mut Node, i: usize) {
    let right = node.children.remove(i + 1);
    let sep_k = node.keys.remove(i);
    let sep_p = node.postings.remove(i);
    let left = &mut node.children[i];
    left.keys.push(sep_k);
    left.postings.push(sep_p);
    left.keys.extend(right.keys);
    left.postings.extend(right.postings);
    left.children.extend(right.children);
}

/// Removes and returns the maximum `(key, posting)` of the subtree,
/// keeping it balanced on the way down.
fn take_max(node: &mut Node) -> (Value, Posting) {
    if node.is_leaf() {
        let k = node.keys.pop().expect("take_max on empty leaf");
        let p = node.postings.pop().expect("postings parallel keys");
        (k, p)
    } else {
        let last = node.children.len() - 1;
        let idx = ensure_child_can_lose(node, last);
        take_max(&mut node.children[idx])
    }
}

/// Removes and returns the minimum `(key, posting)` of the subtree.
fn take_min(node: &mut Node) -> (Value, Posting) {
    if node.is_leaf() {
        let k = node.keys.remove(0);
        let p = node.postings.remove(0);
        (k, p)
    } else {
        let idx = ensure_child_can_lose(node, 0);
        take_min(&mut node.children[idx])
    }
}

/// Whether `v` satisfies both bounds — the shared range predicate used by
/// the index and by the engine's unindexed range scans.
#[must_use]
pub fn value_in_bounds(v: &Value, lo: Bound<&Value>, hi: Bound<&Value>) -> bool {
    let (above, below) = within(v, lo, hi);
    above && below
}

fn within(k: &Value, lo: Bound<&Value>, hi: Bound<&Value>) -> (bool, bool) {
    // (above_lo, below_hi)
    let above = match lo {
        Bound::Unbounded => true,
        Bound::Included(b) => k.key_cmp(b) != Ordering::Less,
        Bound::Excluded(b) => k.key_cmp(b) == Ordering::Greater,
    };
    let below = match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => k.key_cmp(b) != Ordering::Greater,
        Bound::Excluded(b) => k.key_cmp(b) == Ordering::Less,
    };
    (above, below)
}

fn collect_range(node: &Node, lo: Bound<&Value>, hi: Bound<&Value>, out: &mut Vec<(Value, RowId)>) {
    for i in 0..node.keys.len() {
        let (above, below) = within(&node.keys[i], lo, hi);
        if !node.is_leaf() && above {
            // Left child may contain in-range keys below keys[i].
            collect_range(&node.children[i], lo, hi, out);
        }
        if above && below {
            for rid in &node.postings[i] {
                out.push((node.keys[i].clone(), *rid));
            }
        }
        if !below {
            return; // all further keys and subtrees are above the range
        }
    }
    if !node.is_leaf() {
        collect_range(node.children.last().expect("internal node has children"), lo, hi, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rid(i: u64) -> RowId {
        RowId::from_raw(i)
    }

    #[test]
    fn insert_and_get() {
        let mut t = BTreeIndex::new();
        assert!(t.insert(Value::Int(5), rid(1)));
        assert!(t.insert(Value::Int(5), rid(2)));
        assert!(!t.insert(Value::Int(5), rid(1)), "duplicate pair rejected");
        assert_eq!(t.get(&Value::Int(5)), &[rid(1), rid(2)]);
        assert_eq!(t.get(&Value::Int(6)), &[] as &[RowId]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.distinct_keys(), 1);
    }

    #[test]
    fn large_sequential_insert_stays_balanced() {
        let mut t = BTreeIndex::new();
        for i in 0..5_000i64 {
            t.insert(Value::Int(i), rid(i as u64));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 5_000);
        for i in (0..5_000i64).step_by(97) {
            assert_eq!(t.get(&Value::Int(i)), &[rid(i as u64)]);
        }
    }

    #[test]
    fn reverse_insert_stays_balanced() {
        let mut t = BTreeIndex::new();
        for i in (0..3_000i64).rev() {
            t.insert(Value::Int(i), rid(i as u64));
        }
        t.check_invariants().unwrap();
        let all = t.iter_all();
        assert_eq!(all.len(), 3_000);
        assert!(all.windows(2).all(|w| w[0].0.key_cmp(&w[1].0) == Ordering::Less));
    }

    #[test]
    fn delete_everything_both_directions() {
        let mut t = BTreeIndex::new();
        for i in 0..1_000i64 {
            t.insert(Value::Int(i), rid(i as u64));
        }
        for i in 0..500i64 {
            assert!(t.remove(&Value::Int(i), rid(i as u64)), "forward remove {i}");
            t.check_invariants().unwrap_or_else(|e| panic!("after fwd remove {i}: {e}"));
        }
        for i in (500..1_000i64).rev() {
            assert!(t.remove(&Value::Int(i), rid(i as u64)), "reverse remove {i}");
            t.check_invariants().unwrap_or_else(|e| panic!("after rev remove {i}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.distinct_keys(), 0);
    }

    #[test]
    fn remove_from_posting_keeps_key() {
        let mut t = BTreeIndex::new();
        t.insert(Value::Int(1), rid(10));
        t.insert(Value::Int(1), rid(20));
        assert!(t.remove(&Value::Int(1), rid(10)));
        assert!(t.contains_key(&Value::Int(1)));
        assert_eq!(t.get(&Value::Int(1)), &[rid(20)]);
        assert!(!t.remove(&Value::Int(1), rid(10)), "double remove");
        assert!(t.remove(&Value::Int(1), rid(20)));
        assert!(!t.contains_key(&Value::Int(1)));
    }

    #[test]
    fn range_scans_respect_bounds() {
        let mut t = BTreeIndex::new();
        for i in 0..100i64 {
            t.insert(Value::Int(i), rid(i as u64));
        }
        let mid: Vec<i64> = t
            .range(Bound::Included(&Value::Int(10)), Bound::Excluded(&Value::Int(20)))
            .iter()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        assert_eq!(mid, (10..20).collect::<Vec<_>>());

        let open: Vec<i64> = t
            .range(Bound::Excluded(&Value::Int(95)), Bound::Unbounded)
            .iter()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        assert_eq!(open, (96..100).collect::<Vec<_>>());

        assert_eq!(t.range(Bound::Included(&Value::Int(500)), Bound::Unbounded).len(), 0);
    }

    #[test]
    fn mixed_key_types_order_consistently() {
        let mut t = BTreeIndex::new();
        t.insert(Value::Text("b".into()), rid(1));
        t.insert(Value::Int(10), rid(2));
        t.insert(Value::Float(9.5), rid(3));
        t.insert(Value::Text("a".into()), rid(4));
        t.insert(Value::Bool(true), rid(5));
        let keys: Vec<Value> = t.iter_all().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                Value::Bool(true),
                Value::Float(9.5),
                Value::Int(10),
                Value::Text("a".into()),
                Value::Text("b".into()),
            ]
        );
        t.check_invariants().unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The index agrees with a BTreeMap shadow under random workloads,
        /// and structural invariants hold after every operation batch.
        #[test]
        fn prop_matches_shadow(ops in prop::collection::vec(
            (any::<bool>(), 0i64..200, 0u64..4), 1..400,
        )) {
            let mut t = BTreeIndex::new();
            let mut shadow: std::collections::BTreeMap<i64, std::collections::BTreeSet<u64>> =
                Default::default();
            for (is_insert, k, r) in ops {
                if is_insert {
                    let added = t.insert(Value::Int(k), rid(r));
                    let shadow_added = shadow.entry(k).or_default().insert(r);
                    prop_assert_eq!(added, shadow_added);
                } else {
                    let removed = t.remove(&Value::Int(k), rid(r));
                    let shadow_removed = shadow.get_mut(&k).is_some_and(|s| s.remove(&r));
                    if shadow.get(&k).is_some_and(|s| s.is_empty()) {
                        shadow.remove(&k);
                    }
                    prop_assert_eq!(removed, shadow_removed);
                }
            }
            t.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(t.distinct_keys(), shadow.len());
            let expect: Vec<(i64, u64)> = shadow
                .iter()
                .flat_map(|(k, rs)| rs.iter().map(move |r| (*k, *r)))
                .collect();
            let got: Vec<(i64, u64)> = t
                .iter_all()
                .into_iter()
                .map(|(k, r)| (k.as_int().unwrap(), r.raw()))
                .collect();
            prop_assert_eq!(got, expect);
        }
    }
}
