//! Binary encoding of values and rows.
//!
//! A small, self-describing, length-safe codec: every value starts with a
//! tag byte, variable-size payloads carry a `u32` length. The codec is used
//! by the slotted pages (records must be flat bytes) and by the WAL. It is
//! deliberately hand-rolled rather than serde-based so that page space
//! accounting is exact and decoding can be fuzzed against truncation.

use pstm_types::{PstmError, PstmResult, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_TEXT: u8 = 5;

/// Appends the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            let bytes = s.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
    }
}

/// Size in bytes [`encode_value`] will emit for `v`.
#[must_use]
pub fn encoded_len(v: &Value) -> usize {
    match v {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Text(s) => 1 + 4 + s.len(),
    }
}

/// Decodes one value from `buf` starting at `*pos`, advancing `*pos`.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> PstmResult<Value> {
    let tag = *buf.get(*pos).ok_or_else(|| PstmError::WalCorrupt("truncated value tag".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        TAG_INT => {
            let raw = take(buf, pos, 8)?;
            Ok(Value::Int(i64::from_le_bytes(raw.try_into().unwrap())))
        }
        TAG_FLOAT => {
            let raw = take(buf, pos, 8)?;
            Ok(Value::Float(f64::from_le_bytes(raw.try_into().unwrap())))
        }
        TAG_TEXT => {
            let raw = take(buf, pos, 4)?;
            let len = u32::from_le_bytes(raw.try_into().unwrap()) as usize;
            let bytes = take(buf, pos, len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| PstmError::WalCorrupt(format!("invalid utf8 in text value: {e}")))?;
            Ok(Value::Text(s.to_owned()))
        }
        other => Err(PstmError::WalCorrupt(format!("unknown value tag {other}"))),
    }
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> PstmResult<&'a [u8]> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| PstmError::WalCorrupt("truncated value payload".into()))?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Encodes a row (column-count prefix + each value).
#[must_use]
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + values.iter().map(encoded_len).sum::<usize>());
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        encode_value(v, &mut out);
    }
    out
}

/// Decodes a row previously produced by [`encode_row`].
pub fn decode_row(buf: &[u8]) -> PstmResult<Vec<Value>> {
    let mut pos = 0usize;
    let raw = take(buf, &mut pos, 2)?;
    let n = u16::from_le_bytes(raw.try_into().unwrap()) as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(PstmError::WalCorrupt(format!(
            "trailing bytes after row: {} of {}",
            buf.len() - pos,
            buf.len()
        )));
    }
    Ok(values)
}

// The Fletcher-32 style checksum these pages and the WAL frame on now
// lives in `pstm_obs::frame` so the flight recorder shares one
// torn-tail machinery with the WAL; re-exported here for compatibility.
pub use pstm_obs::frame::{checksum, ChecksumStream};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.5),
            Value::Text(String::new()),
            Value::Text("füßé".into()),
        ] {
            let mut buf = Vec::new();
            encode_value(&v, &mut buf);
            assert_eq!(buf.len(), encoded_len(&v), "length mismatch for {v:?}");
            let mut pos = 0;
            let back = decode_value(&buf, &mut pos).unwrap();
            assert_eq!(back, v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn row_round_trips() {
        let row =
            vec![Value::Int(1), Value::Text("flight".into()), Value::Float(99.5), Value::Null];
        let buf = encode_row(&row);
        assert_eq!(decode_row(&buf).unwrap(), row);
    }

    #[test]
    fn truncation_is_detected() {
        let buf = encode_row(&[Value::Int(7), Value::Text("abc".into())]);
        for cut in 0..buf.len() {
            assert!(decode_row(&buf[..cut]).is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut buf = encode_row(&[Value::Int(7)]);
        buf.push(0);
        assert!(decode_row(&buf).is_err());
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let buf = [99u8];
        let mut pos = 0;
        assert!(decode_value(&buf, &mut pos).is_err());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = checksum(data);
        let mut copy = data.to_vec();
        copy[7] ^= 0x01;
        assert_ne!(checksum(&copy), base);
    }

    #[test]
    fn stream_matches_one_shot_across_chunk_boundaries() {
        // Lengths straddling the 359-byte fold boundary, plus empty.
        for len in [0usize, 1, 358, 359, 360, 717, 718, 719, 1024] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
            let mut s = ChecksumStream::new();
            s.update(&data);
            assert_eq!(s.finish(), checksum(&data), "len {len}");
        }
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // Finite floats only: the engine rejects NaN at arithmetic
            // boundaries, and NaN != NaN would fail the round-trip check.
            any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
            ".{0,64}".prop_map(Value::Text),
        ]
    }

    proptest! {
        #[test]
        fn prop_row_round_trip(row in prop::collection::vec(arb_value(), 0..16)) {
            let buf = encode_row(&row);
            prop_assert_eq!(decode_row(&buf).unwrap(), row);
        }

        #[test]
        fn prop_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_row(&bytes); // must not panic
        }

        #[test]
        fn prop_stream_split_invariant(
            bytes in prop::collection::vec(any::<u8>(), 0..1024),
            cuts in prop::collection::vec(0usize..1024, 0..6),
        ) {
            // However the input is split into update() calls, the digest
            // equals the one-shot checksum of the concatenation.
            let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(bytes.len())).collect();
            cuts.sort_unstable();
            let mut s = ChecksumStream::new();
            let mut prev = 0usize;
            for c in cuts {
                s.update(&bytes[prev..c]);
                prev = c;
            }
            s.update(&bytes[prev..]);
            prop_assert_eq!(s.finish(), checksum(&bytes));
        }
    }
}
