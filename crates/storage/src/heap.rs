//! Heap files: an append-friendly collection of slotted pages addressed by
//! [`RowId`].

use crate::page::{Page, PAGE_SIZE};
use crate::row::{Row, RowId};
use pstm_types::{PstmError, PstmResult};

/// A heap file — the physical store of one table.
///
/// Insertion uses a simple last-page-first policy with a linear fallback
/// over pages that advertise enough free space; this keeps the structure
/// deterministic and compact without a free-space map.
#[derive(Default)]
pub struct HeapFile {
    pages: Vec<Page>,
}

impl HeapFile {
    /// An empty heap.
    #[must_use]
    pub fn new() -> Self {
        HeapFile { pages: Vec::new() }
    }

    /// Number of pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total live rows across pages (O(pages·slots); used by tests and
    /// statistics, not hot paths).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.pages.iter().map(Page::live_count).sum()
    }

    /// Inserts an encoded row, returning its address.
    pub fn insert(&mut self, row: &Row) -> PstmResult<RowId> {
        let rec = row.encode();
        if rec.len() > PAGE_SIZE / 2 {
            return Err(PstmError::internal(format!(
                "record of {} bytes exceeds half-page limit",
                rec.len()
            )));
        }
        // Try the last page, then any page with room, then a fresh page.
        if let Some(last) = self.pages.len().checked_sub(1) {
            if let Some(slot) = self.pages[last].insert(&rec) {
                return Ok(RowId::new(last as u32, slot));
            }
        }
        for (i, page) in self.pages.iter_mut().enumerate() {
            if page.can_insert(rec.len()) {
                if let Some(slot) = page.insert(&rec) {
                    return Ok(RowId::new(i as u32, slot));
                }
            }
        }
        let mut page = Page::new();
        let slot =
            page.insert(&rec).ok_or_else(|| PstmError::internal("fresh page rejected record"))?;
        self.pages.push(page);
        Ok(RowId::new(self.pages.len() as u32 - 1, slot))
    }

    /// Places a row at a *specific* address — recovery redo only (the WAL
    /// records the address each insert originally received and redo must
    /// reproduce it). Missing pages are created empty.
    pub fn materialize_at(&mut self, id: RowId, row: &Row) -> PstmResult<()> {
        while self.pages.len() <= id.page() as usize {
            self.pages.push(Page::new());
        }
        self.pages[id.page() as usize].insert_at(id.slot(), &row.encode())
    }

    /// Fetches and decodes the row at `id`.
    pub fn get(&self, id: RowId) -> PstmResult<Row> {
        let page = self
            .pages
            .get(id.page() as usize)
            .ok_or_else(|| PstmError::NotFound(format!("row {id}")))?;
        let rec = page.get(id.slot()).ok_or_else(|| PstmError::NotFound(format!("row {id}")))?;
        Row::decode(rec)
    }

    /// Whether a live row exists at `id`.
    #[must_use]
    pub fn exists(&self, id: RowId) -> bool {
        self.pages.get(id.page() as usize).and_then(|p| p.get(id.slot())).is_some()
    }

    /// Rewrites the row at `id` in place. Rows never migrate: the GTM hands
    /// out stable [`RowId`]s as object identities, so a row that no longer
    /// fits its page is an error (records in this system shrink or keep
    /// their size—values are fixed-width except text).
    pub fn update(&mut self, id: RowId, row: &Row) -> PstmResult<()> {
        let page = self
            .pages
            .get_mut(id.page() as usize)
            .ok_or_else(|| PstmError::NotFound(format!("row {id}")))?;
        match page.update(id.slot(), &row.encode())? {
            true => Ok(()),
            false => Err(PstmError::internal(format!(
                "row {id} grew beyond its page; in-place update impossible"
            ))),
        }
    }

    /// Marks the row at `id` logically deleted (invisible, space
    /// reserved) — the first phase of a transactional delete.
    pub fn mark_deleted(&mut self, id: RowId) -> PstmResult<()> {
        self.page_mut(id)?.mark_deleted(id.slot()).map_err(|_| not_found(id))
    }

    /// Reverses [`HeapFile::mark_deleted`] (abort path).
    pub fn undelete(&mut self, id: RowId) -> PstmResult<()> {
        self.page_mut(id)?.undelete(id.slot())
    }

    /// Finalizes [`HeapFile::mark_deleted`] (commit path): the slot and
    /// bytes become reusable.
    pub fn purge(&mut self, id: RowId) -> PstmResult<()> {
        self.page_mut(id)?.purge(id.slot())
    }

    fn page_mut(&mut self, id: RowId) -> PstmResult<&mut Page> {
        self.pages.get_mut(id.page() as usize).ok_or_else(|| not_found(id))
    }

    /// Deletes the row at `id`.
    pub fn delete(&mut self, id: RowId) -> PstmResult<()> {
        let page = self
            .pages
            .get_mut(id.page() as usize)
            .ok_or_else(|| PstmError::NotFound(format!("row {id}")))?;
        page.delete(id.slot()).map_err(|_| PstmError::NotFound(format!("row {id}")))
    }

    /// Full scan in `RowId` order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, Row)> + '_ {
        self.pages.iter().enumerate().flat_map(|(pno, page)| {
            page.iter().map(move |(slot, rec)| {
                let row = Row::decode(rec).expect("heap pages contain only rows we encoded");
                (RowId::new(pno as u32, slot), row)
            })
        })
    }

    /// Serializes every page (used by checkpointing).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.pages.len() * (PAGE_SIZE + 4));
        out.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for p in &self.pages {
            out.extend_from_slice(&p.to_bytes());
        }
        out
    }

    /// Restores a heap from [`HeapFile::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> PstmResult<Self> {
        if bytes.len() < 4 {
            return Err(PstmError::WalCorrupt("heap image truncated".into()));
        }
        let n = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        let expected = 4 + n * (PAGE_SIZE + 4);
        if bytes.len() != expected {
            return Err(PstmError::WalCorrupt(format!(
                "heap image has {} bytes, expected {expected}",
                bytes.len()
            )));
        }
        let mut pages = Vec::with_capacity(n);
        for i in 0..n {
            let start = 4 + i * (PAGE_SIZE + 4);
            pages.push(Page::from_bytes(&bytes[start..start + PAGE_SIZE + 4])?);
        }
        Ok(HeapFile { pages })
    }
}

fn not_found(id: RowId) -> PstmError {
    PstmError::NotFound(format!("row {id}"))
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("pages", &self.pages.len())
            .field("rows", &self.row_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_types::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Text(format!("row-{i}"))])
    }

    #[test]
    fn insert_get_many_rows_across_pages() {
        let mut h = HeapFile::new();
        let ids: Vec<RowId> = (0..2000).map(|i| h.insert(&row(i)).unwrap()).collect();
        assert!(h.page_count() > 1, "2000 rows must span pages");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(h.get(*id).unwrap(), row(i as i64));
        }
        assert_eq!(h.row_count(), 2000);
    }

    #[test]
    fn update_preserves_row_id() {
        let mut h = HeapFile::new();
        let id = h.insert(&row(1)).unwrap();
        h.update(id, &row(999)).unwrap();
        assert_eq!(h.get(id).unwrap(), row(999));
    }

    #[test]
    fn delete_then_get_fails() {
        let mut h = HeapFile::new();
        let id = h.insert(&row(1)).unwrap();
        h.delete(id).unwrap();
        assert!(h.get(id).is_err());
        assert!(!h.exists(id));
        assert!(h.delete(id).is_err());
    }

    #[test]
    fn scan_returns_live_rows_in_rowid_order() {
        let mut h = HeapFile::new();
        let ids: Vec<RowId> = (0..50).map(|i| h.insert(&row(i)).unwrap()).collect();
        h.delete(ids[10]).unwrap();
        h.delete(ids[20]).unwrap();
        let scanned: Vec<(RowId, Row)> = h.scan().collect();
        assert_eq!(scanned.len(), 48);
        assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn deleted_space_is_reused() {
        let mut h = HeapFile::new();
        let ids: Vec<RowId> = (0..500).map(|i| h.insert(&row(i)).unwrap()).collect();
        let pages_before = h.page_count();
        for id in &ids {
            h.delete(*id).unwrap();
        }
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        assert_eq!(h.page_count(), pages_before, "reinsertions should reuse freed pages");
    }

    #[test]
    fn oversized_record_rejected() {
        let mut h = HeapFile::new();
        let big = Row::new(vec![Value::Text("x".repeat(PAGE_SIZE))]);
        assert!(h.insert(&big).is_err());
    }

    #[test]
    fn missing_row_ids_error() {
        let h = HeapFile::new();
        assert!(h.get(RowId::new(0, 0)).is_err());
        assert!(h.get(RowId::new(99, 0)).is_err());
    }

    #[test]
    fn heap_serialization_round_trips() {
        let mut h = HeapFile::new();
        let ids: Vec<RowId> = (0..300).map(|i| h.insert(&row(i)).unwrap()).collect();
        h.delete(ids[7]).unwrap();
        let img = h.to_bytes();
        let back = HeapFile::from_bytes(&img).unwrap();
        assert_eq!(back.row_count(), 299);
        assert_eq!(back.get(ids[0]).unwrap(), row(0));
        assert!(back.get(ids[7]).is_err());

        assert!(HeapFile::from_bytes(&img[..img.len() - 1]).is_err());
        assert!(HeapFile::from_bytes(&[]).is_err());
    }
}
