//! Rows and row identifiers.

use pstm_types::{PstmResult, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical address of a row: page number and slot within the page,
/// packed into 48 bits of a `u64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(u64);

impl RowId {
    /// Packs `(page, slot)` into a row id.
    #[must_use]
    pub fn new(page: u32, slot: u16) -> Self {
        RowId(((page as u64) << 16) | slot as u64)
    }

    /// The page number.
    #[must_use]
    pub fn page(self) -> u32 {
        (self.0 >> 16) as u32
    }

    /// The slot within the page.
    #[must_use]
    pub fn slot(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// Raw packed representation (for logging / ordering).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a row id from its raw representation.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        RowId(raw)
    }
}

impl fmt::Debug for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}:{}", self.page(), self.slot())
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}:{}", self.page(), self.slot())
    }
}

/// An owned row of values, in schema column order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Wraps a vector of values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Borrow the values.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at column `i`, if present.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Replaces the value at column `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds; callers validate against the schema
    /// first.
    pub fn set(&mut self, i: usize, v: Value) {
        self.0[i] = v;
    }

    /// Encodes the row to page/WAL bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        crate::codec::encode_row(&self.0)
    }

    /// Decodes a row from page/WAL bytes.
    pub fn decode(buf: &[u8]) -> PstmResult<Self> {
        crate::codec::decode_row(buf).map(Row)
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_id_packs_and_unpacks() {
        let r = RowId::new(123_456, 789);
        assert_eq!(r.page(), 123_456);
        assert_eq!(r.slot(), 789);
        assert_eq!(RowId::from_raw(r.raw()), r);
    }

    #[test]
    fn row_id_extremes() {
        let r = RowId::new(u32::MAX, u16::MAX);
        assert_eq!(r.page(), u32::MAX);
        assert_eq!(r.slot(), u16::MAX);
    }

    #[test]
    fn row_id_orders_by_page_then_slot() {
        assert!(RowId::new(0, 5) < RowId::new(1, 0));
        assert!(RowId::new(1, 0) < RowId::new(1, 1));
    }

    #[test]
    fn row_encode_decode() {
        let row = Row::new(vec![Value::Int(5), Value::Text("hi".into())]);
        let back = Row::decode(&row.encode()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn row_set_get() {
        let mut row = Row::new(vec![Value::Int(1), Value::Int(2)]);
        row.set(1, Value::Int(9));
        assert_eq!(row.get(1), Some(&Value::Int(9)));
        assert_eq!(row.get(2), None);
    }
}
