//! Single-file persistence for the engine.
//!
//! The LDBS owns durability in the paper's architecture; this module
//! lets a database outlive the process, not just a simulated crash. The
//! format is deliberately boring — a magic header and length-prefixed,
//! checksummed sections:
//!
//! ```text
//! | magic "PSTMDB1\0" | catalog len u32 | catalog JSON | catalog crc u32 |
//! | heap count u32 | per heap: len u64 + image + crc u32 |
//! ```
//!
//! [`crate::engine::Database::save_to`] takes a quiescent checkpoint (so
//! the image holds only committed data) and writes it out;
//! [`crate::engine::Database::open_from`] reads it back through the same
//! validation path recovery uses. The WAL is not persisted: a save *is*
//! a checkpoint, after which the log is empty by construction.

use crate::codec::checksum;
use pstm_types::{PstmError, PstmResult};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PSTMDB1\0";

/// Serializes a checkpoint image (catalog JSON + heap images) to bytes.
pub(crate) fn encode(catalog_json: &[u8], heaps: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        MAGIC.len()
            + 8
            + catalog_json.len()
            + 4
            + heaps.iter().map(|h| 12 + h.len()).sum::<usize>(),
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(catalog_json.len() as u32).to_le_bytes());
    out.extend_from_slice(catalog_json);
    out.extend_from_slice(&checksum(catalog_json).to_le_bytes());
    out.extend_from_slice(&(heaps.len() as u32).to_le_bytes());
    for heap in heaps {
        out.extend_from_slice(&(heap.len() as u64).to_le_bytes());
        out.extend_from_slice(heap);
        out.extend_from_slice(&checksum(heap).to_le_bytes());
    }
    out
}

/// Parses and validates a file image back into catalog JSON + heap
/// images.
pub(crate) fn decode(bytes: &[u8]) -> PstmResult<(Vec<u8>, Vec<Vec<u8>>)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> PstmResult<&[u8]> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| PstmError::WalCorrupt("database file truncated".into()))?;
        let s = &bytes[*pos..end];
        *pos = end;
        Ok(s)
    };
    if take(&mut pos, MAGIC.len())? != MAGIC {
        return Err(PstmError::WalCorrupt("not a PSTM database file (bad magic)".into()));
    }
    let cat_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let catalog_json = take(&mut pos, cat_len)?.to_vec();
    let cat_crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    if checksum(&catalog_json) != cat_crc {
        return Err(PstmError::WalCorrupt("catalog section checksum mismatch".into()));
    }
    let heap_count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    // Untrusted length: never pre-allocate from it directly (a corrupted
    // count must fail on the section reads, not in the allocator).
    let mut heaps = Vec::with_capacity(heap_count.min(1_024));
    for i in 0..heap_count {
        let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let img = take(&mut pos, len)?.to_vec();
        let crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if checksum(&img) != crc {
            return Err(PstmError::WalCorrupt(format!("heap #{i} checksum mismatch")));
        }
        heaps.push(img);
    }
    if pos != bytes.len() {
        return Err(PstmError::WalCorrupt(format!(
            "{} trailing bytes after last heap",
            bytes.len() - pos
        )));
    }
    Ok((catalog_json, heaps))
}

/// Writes `bytes` to `path` atomically (temp file + rename).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> PstmResult<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a whole file.
pub(crate) fn read_all(path: &Path) -> PstmResult<Vec<u8>> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let catalog = br#"{"tables":[]}"#.to_vec();
        let heaps = vec![vec![1u8; 100], vec![2u8; 200], Vec::new()];
        let bytes = encode(&catalog, &heaps);
        let (cat, hs) = decode(&bytes).unwrap();
        assert_eq!(cat, catalog);
        assert_eq!(hs, heaps);
    }

    #[test]
    fn corruption_detected_everywhere() {
        let catalog = br#"{"tables":[]}"#.to_vec();
        let heaps = vec![vec![7u8; 64]];
        let bytes = encode(&catalog, &heaps);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(decode(&bad).is_err(), "flip at byte {i} not detected");
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(b"{}", &[vec![1u8; 32]]);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} not detected");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode(&extended).is_err(), "trailing byte not detected");
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = encode(b"{}", &[]);
        bytes[0] = b'X';
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }
}
