//! `pstm-storage` — the Local DataBase System (LDBS) substrate.
//!
//! The paper's middleware delegates **consistency and durability** to "a
//! traditional relational DBMS" it calls the LDBS; the Secure System
//! Transactions (SSTs) generated at commit time are ordinary short
//! transactions against it. This crate provides that substrate as an
//! embedded storage engine:
//!
//! * a typed [`catalog`] of tables ([`schema`] definitions + [`constraint`]s),
//! * rows stored in slotted [`page`]s organised into [`heap`] files,
//! * secondary [`btree`] indexes,
//! * a write-ahead log ([`wal`]) with checksummed records and
//!   ARIES-flavoured [`recovery`] (redo winners, undo losers),
//! * a [`engine::Database`] facade tying it together, enforcing CHECK
//!   constraints on every write (the paper's `FreeTickets >= 0` example).
//!
//! The engine is deliberately synchronous and deterministic — the
//! experiments replay bit-identically for a fixed seed — but it is a real
//! engine: pages serialize to bytes, the WAL survives a simulated crash,
//! and recovery reconstructs committed state.

#![warn(missing_docs)]

pub mod binding;
pub mod btree;
pub mod catalog;
pub mod codec;
pub mod constraint;
pub mod engine;
pub mod heap;
pub mod page;
pub mod persist;
pub mod recovery;
pub mod row;
pub mod schema;
pub mod wal;

pub use binding::{Binding, BindingRegistry};
pub use catalog::{Catalog, TableId, TableMeta};
pub use constraint::{Constraint, Predicate};
pub use engine::{Database, WriteOp, WriteSet};
pub use heap::HeapFile;
pub use page::{Page, PAGE_SIZE};
pub use row::{Row, RowId};
pub use schema::{ColumnDef, TableSchema};
pub use wal::{LogRecord, Lsn, Wal};
