//! Declarative CHECK constraints.
//!
//! The paper's motivating strategy "imposes precise constraints on
//! important resources (for example, `Flight.FreeTickets >= 0`)" and its
//! §VII observes that reconciliation can violate such constraints, causing
//! aborts — the effect the admission-control extension bounds. The engine
//! enforces these constraints on every write, including SST writes.

use pstm_types::{PstmError, PstmResult, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A predicate over a single column value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `col >= bound`
    Ge(Value),
    /// `col > bound`
    Gt(Value),
    /// `col <= bound`
    Le(Value),
    /// `col < bound`
    Lt(Value),
    /// `col == bound`
    Eq(Value),
    /// `col != bound`
    Ne(Value),
    /// `lo <= col <= hi`
    Between(Value, Value),
}

impl Predicate {
    /// Evaluates the predicate. NULL satisfies every predicate (SQL
    /// semantics: CHECK passes on NULL).
    #[must_use]
    pub fn eval(&self, v: &Value) -> bool {
        if v.is_null() {
            return true;
        }
        match self {
            Predicate::Ge(b) => v.key_cmp(b) != Ordering::Less,
            Predicate::Gt(b) => v.key_cmp(b) == Ordering::Greater,
            Predicate::Le(b) => v.key_cmp(b) != Ordering::Greater,
            Predicate::Lt(b) => v.key_cmp(b) == Ordering::Less,
            Predicate::Eq(b) => v.key_cmp(b) == Ordering::Equal,
            Predicate::Ne(b) => v.key_cmp(b) != Ordering::Equal,
            Predicate::Between(lo, hi) => {
                v.key_cmp(lo) != Ordering::Less && v.key_cmp(hi) != Ordering::Greater
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Ge(b) => write!(f, ">= {b}"),
            Predicate::Gt(b) => write!(f, "> {b}"),
            Predicate::Le(b) => write!(f, "<= {b}"),
            Predicate::Lt(b) => write!(f, "< {b}"),
            Predicate::Eq(b) => write!(f, "== {b}"),
            Predicate::Ne(b) => write!(f, "!= {b}"),
            Predicate::Between(lo, hi) => write!(f, "BETWEEN {lo} AND {hi}"),
        }
    }
}

/// A CHECK constraint bound to one column of a table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Column index the predicate applies to.
    pub column: usize,
    /// The predicate.
    pub predicate: Predicate,
    /// Display name used in violation errors.
    pub name: String,
}

impl Constraint {
    /// Builds a named constraint.
    #[must_use]
    pub fn new(name: impl Into<String>, column: usize, predicate: Predicate) -> Self {
        Constraint { column, predicate, name: name.into() }
    }

    /// The canonical "resource never negative" constraint of the paper's
    /// motivating scenario.
    #[must_use]
    pub fn non_negative(name: impl Into<String>, column: usize) -> Self {
        Constraint::new(name, column, Predicate::Ge(Value::Int(0)))
    }

    /// Checks a full row.
    pub fn check_row(&self, row: &[Value]) -> PstmResult<()> {
        match row.get(self.column) {
            Some(v) => self.check_value(v),
            None => Err(PstmError::internal(format!(
                "constraint {} refers to column #{} beyond row arity {}",
                self.name,
                self.column,
                row.len()
            ))),
        }
    }

    /// Checks a candidate value for this constraint's column.
    pub fn check_value(&self, v: &Value) -> PstmResult<()> {
        if self.predicate.eval(v) {
            Ok(())
        } else {
            Err(PstmError::ConstraintViolation {
                constraint: format!("{} ({})", self.name, self.predicate),
                value: v.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ge_enforces_non_negativity() {
        let c = Constraint::non_negative("free_tickets >= 0", 1);
        c.check_row(&[Value::Int(1), Value::Int(0)]).unwrap();
        c.check_row(&[Value::Int(1), Value::Int(100)]).unwrap();
        let err = c.check_row(&[Value::Int(1), Value::Int(-1)]).unwrap_err();
        assert!(matches!(err, PstmError::ConstraintViolation { .. }));
        assert!(err.to_string().contains("free_tickets"));
    }

    #[test]
    fn all_predicates_evaluate() {
        let five = Value::Int(5);
        assert!(Predicate::Ge(Value::Int(5)).eval(&five));
        assert!(!Predicate::Gt(Value::Int(5)).eval(&five));
        assert!(Predicate::Le(Value::Int(5)).eval(&five));
        assert!(!Predicate::Lt(Value::Int(5)).eval(&five));
        assert!(Predicate::Eq(Value::Int(5)).eval(&five));
        assert!(!Predicate::Ne(Value::Int(5)).eval(&five));
        assert!(Predicate::Between(Value::Int(0), Value::Int(10)).eval(&five));
        assert!(!Predicate::Between(Value::Int(6), Value::Int(10)).eval(&five));
    }

    #[test]
    fn null_passes_checks() {
        let c = Constraint::non_negative("c", 0);
        c.check_row(&[Value::Null]).unwrap();
    }

    #[test]
    fn cross_type_comparison_uses_key_order() {
        // Int vs Float compares numerically.
        assert!(Predicate::Ge(Value::Float(0.5)).eval(&Value::Int(1)));
        assert!(!Predicate::Ge(Value::Float(1.5)).eval(&Value::Int(1)));
    }

    #[test]
    fn out_of_arity_column_is_internal_error() {
        let c = Constraint::non_negative("c", 3);
        assert!(matches!(c.check_row(&[Value::Int(1)]).unwrap_err(), PstmError::Internal(_)));
    }
}
