//! The table catalog: schemas, constraints and index definitions.
//!
//! The catalog is pure metadata (serializable for checkpoints); the engine
//! pairs each entry with its physical [`crate::heap::HeapFile`] and
//! [`crate::btree::BTreeIndex`]es.

use crate::constraint::Constraint;
use crate::schema::TableSchema;
use pstm_types::{PstmError, PstmResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a table within one database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tbl{}", self.0)
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tbl{}", self.0)
    }
}

/// Definition of a secondary index over one column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Indexed column.
    pub column: usize,
}

/// Metadata of one table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    /// The schema.
    pub schema: TableSchema,
    /// CHECK constraints enforced on every write.
    pub constraints: Vec<Constraint>,
    /// Secondary indexes.
    pub indexes: Vec<IndexDef>,
}

/// The catalog: an ordered collection of table metadata with name lookup.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    #[serde(skip)]
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table; fails if the name is taken or a constraint
    /// references a column beyond the schema arity.
    pub fn create_table(
        &mut self,
        schema: TableSchema,
        constraints: Vec<Constraint>,
    ) -> PstmResult<TableId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(PstmError::AlreadyExists(format!("table {}", schema.name)));
        }
        for c in &constraints {
            if c.column >= schema.arity() {
                return Err(PstmError::internal(format!(
                    "constraint {} references column #{} beyond arity {} of table {}",
                    c.name,
                    c.column,
                    schema.arity(),
                    schema.name
                )));
            }
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(TableMeta { schema, constraints, indexes: Vec::new() });
        Ok(id)
    }

    /// Adds a secondary index definition; returns its position among the
    /// table's indexes.
    pub fn create_index(&mut self, table: TableId, column: usize) -> PstmResult<usize> {
        let meta = self.meta_mut(table)?;
        if column >= meta.schema.arity() {
            return Err(PstmError::NotFound(format!(
                "column #{column} in table {}",
                meta.schema.name
            )));
        }
        if meta.indexes.iter().any(|i| i.column == column) {
            return Err(PstmError::AlreadyExists(format!(
                "index on column #{column} of table {}",
                meta.schema.name
            )));
        }
        meta.indexes.push(IndexDef { column });
        Ok(meta.indexes.len() - 1)
    }

    /// Metadata of `table`.
    pub fn meta(&self, table: TableId) -> PstmResult<&TableMeta> {
        self.tables
            .get(table.0 as usize)
            .ok_or_else(|| PstmError::NotFound(format!("table {table}")))
    }

    fn meta_mut(&mut self, table: TableId) -> PstmResult<&mut TableMeta> {
        self.tables
            .get_mut(table.0 as usize)
            .ok_or_else(|| PstmError::NotFound(format!("table {table}")))
    }

    /// Looks a table up by name.
    pub fn table_id(&self, name: &str) -> PstmResult<TableId> {
        self.by_name.get(name).copied().ok_or_else(|| PstmError::NotFound(format!("table {name}")))
    }

    /// Number of tables.
    #[must_use]
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Iterates `(id, meta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableMeta)> {
        self.tables.iter().enumerate().map(|(i, m)| (TableId(i as u32), m))
    }

    /// Rebuilds the name lookup after deserialization (serde skips it).
    pub fn rebuild_lookup(&mut self) {
        self.by_name = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, m)| (m.schema.name.clone(), TableId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use pstm_types::ValueKind;

    fn flight_schema() -> TableSchema {
        TableSchema::new(
            "Flight",
            vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("free", ValueKind::Int)],
        )
        .unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        let id =
            c.create_table(flight_schema(), vec![Constraint::non_negative("free>=0", 1)]).unwrap();
        assert_eq!(c.table_id("Flight").unwrap(), id);
        assert_eq!(c.meta(id).unwrap().schema.name, "Flight");
        assert_eq!(c.table_count(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table(flight_schema(), vec![]).unwrap();
        assert!(matches!(
            c.create_table(flight_schema(), vec![]).unwrap_err(),
            PstmError::AlreadyExists(_)
        ));
    }

    #[test]
    fn constraint_column_validated() {
        let mut c = Catalog::new();
        let err =
            c.create_table(flight_schema(), vec![Constraint::non_negative("bad", 9)]).unwrap_err();
        assert!(matches!(err, PstmError::Internal(_)));
    }

    #[test]
    fn index_creation_and_duplication() {
        let mut c = Catalog::new();
        let id = c.create_table(flight_schema(), vec![]).unwrap();
        assert_eq!(c.create_index(id, 1).unwrap(), 0);
        assert!(matches!(c.create_index(id, 1).unwrap_err(), PstmError::AlreadyExists(_)));
        assert!(c.create_index(id, 7).is_err());
        assert!(c.create_index(TableId(9), 0).is_err());
    }

    #[test]
    fn serde_round_trip_rebuilds_lookup() {
        let mut c = Catalog::new();
        c.create_table(flight_schema(), vec![]).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let mut back: Catalog = serde_json::from_str(&json).unwrap();
        assert!(back.table_id("Flight").is_err(), "lookup not serialized");
        back.rebuild_lookup();
        assert_eq!(back.table_id("Flight").unwrap(), TableId(0));
        assert_eq!(back.tables, c.tables);
    }
}
