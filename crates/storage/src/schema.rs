//! Table schemas and row validation.

use pstm_types::{PstmError, PstmResult, Value, ValueKind};
use serde::{Deserialize, Serialize};

/// Definition of one column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Declared type. `ValueKind::Null` is not a valid declared type.
    pub kind: ValueKind,
    /// Whether NULL is admissible.
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column of the given kind.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: ValueKind) -> Self {
        ColumnDef { name: name.into(), kind, nullable: false }
    }

    /// Marks the column nullable; builder-style.
    #[must_use]
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }

    /// Whether `v` is admissible in this column. Integers are accepted in
    /// float columns (widening); everything else must match exactly.
    #[must_use]
    pub fn admits(&self, v: &Value) -> bool {
        match v {
            Value::Null => self.nullable,
            other => {
                other.kind() == self.kind
                    || (self.kind == ValueKind::Float && other.kind() == ValueKind::Int)
            }
        }
    }
}

/// Schema of a table: an ordered list of columns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name, unique within the catalog.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Builds a schema, validating column-name uniqueness and types.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> PstmResult<Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(PstmError::internal("table name must be non-empty"));
        }
        if columns.is_empty() {
            return Err(PstmError::internal(format!("table {name} has no columns")));
        }
        for (i, c) in columns.iter().enumerate() {
            if c.kind == ValueKind::Null {
                return Err(PstmError::internal(format!(
                    "column {} of table {name} declared NULL type",
                    c.name
                )));
            }
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(PstmError::AlreadyExists(format!("column {} in table {name}", c.name)));
            }
        }
        Ok(TableSchema { name, columns })
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn column_index(&self, name: &str) -> PstmResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| PstmError::NotFound(format!("column {name} in table {}", self.name)))
    }

    /// Validates a full row against the schema (arity + per-column types).
    pub fn validate_row(&self, row: &[Value]) -> PstmResult<()> {
        if row.len() != self.columns.len() {
            return Err(PstmError::internal(format!(
                "row arity {} does not match table {} arity {}",
                row.len(),
                self.name,
                self.columns.len()
            )));
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !col.admits(v) {
                return Err(PstmError::TypeMismatch { expected: col.kind, found: v.kind() });
            }
        }
        Ok(())
    }

    /// Validates a single-column update.
    pub fn validate_column(&self, index: usize, v: &Value) -> PstmResult<()> {
        let col = self.columns.get(index).ok_or_else(|| {
            PstmError::NotFound(format!("column #{index} in table {}", self.name))
        })?;
        if col.admits(v) {
            Ok(())
        } else {
            Err(PstmError::TypeMismatch { expected: col.kind, found: v.kind() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights() -> TableSchema {
        TableSchema::new(
            "Flight",
            vec![
                ColumnDef::new("id", ValueKind::Int),
                ColumnDef::new("free_tickets", ValueKind::Int),
                ColumnDef::new("price", ValueKind::Float),
                ColumnDef::new("note", ValueKind::Text).nullable(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_rows_pass() {
        let s = flights();
        s.validate_row(&[Value::Int(1), Value::Int(100), Value::Float(59.9), Value::Null]).unwrap();
        // Int widens into Float columns.
        s.validate_row(&[Value::Int(1), Value::Int(100), Value::Int(60), Value::Text("x".into())])
            .unwrap();
    }

    #[test]
    fn arity_mismatch_fails() {
        let s = flights();
        assert!(s.validate_row(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn type_mismatch_fails() {
        let s = flights();
        let err = s
            .validate_row(&[
                Value::Int(1),
                Value::Text("no".into()),
                Value::Float(1.0),
                Value::Null,
            ])
            .unwrap_err();
        assert!(matches!(err, PstmError::TypeMismatch { expected: ValueKind::Int, .. }));
    }

    #[test]
    fn null_only_in_nullable_columns() {
        let s = flights();
        assert!(s
            .validate_row(&[Value::Null, Value::Int(1), Value::Float(1.0), Value::Null])
            .is_err());
        s.validate_column(3, &Value::Null).unwrap();
        assert!(s.validate_column(0, &Value::Null).is_err());
    }

    #[test]
    fn duplicate_column_names_rejected() {
        let err = TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ValueKind::Int), ColumnDef::new("a", ValueKind::Int)],
        )
        .unwrap_err();
        assert!(matches!(err, PstmError::AlreadyExists(_)));
    }

    #[test]
    fn empty_and_null_typed_schemas_rejected() {
        assert!(TableSchema::new("t", vec![]).is_err());
        assert!(TableSchema::new("t", vec![ColumnDef::new("a", ValueKind::Null)]).is_err());
        assert!(TableSchema::new("", vec![ColumnDef::new("a", ValueKind::Int)]).is_err());
    }

    #[test]
    fn column_index_lookup() {
        let s = flights();
        assert_eq!(s.column_index("free_tickets").unwrap(), 1);
        assert!(s.column_index("ghost").is_err());
        assert_eq!(s.arity(), 4);
    }
}
