//! Slotted pages.
//!
//! Classical slotted-page layout in a fixed 4 KiB buffer:
//!
//! ```text
//! +--------+-----------------+ .... +------------------+
//! | header | slot directory →|      |← record area     |
//! +--------+-----------------+ .... +------------------+
//! 0        8                  free                 4096
//! ```
//!
//! * header: `slot_count: u16`, `free_end: u16`, `dead_bytes: u16`, 2 bytes
//!   reserved;
//! * the slot directory grows upward, 4 bytes per slot
//!   (`offset: u16`, `len: u16`); `offset == 0` marks a tombstone
//!   (offset 0 is inside the header, so it can never be a real record);
//! * records grow downward from the end of the page.
//!
//! Updates rewrite in place when the new record is not longer; otherwise
//! they re-append and repoint the slot. Deleted/stale bytes are tracked in
//! `dead_bytes` and reclaimed by [`Page::compact`], which inserts trigger
//! automatically when contiguous space runs out but total space suffices.

use pstm_types::{PstmError, PstmResult};

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;

const HEADER_LEN: usize = 8;
const SLOT_LEN: usize = 4;
const TOMBSTONE_OFFSET: u16 = 0;
/// High bit of the slot length marks a record *logically deleted* by an
/// uncommitted transaction: invisible to readers, but its bytes and slot
/// stay reserved so the delete can be undone ([`Page::undelete`]) or
/// finalized ([`Page::purge`]) — see the engine's deferred-delete
/// protocol.
const DELETED_FLAG: u16 = 0x8000;

/// A fixed-size slotted page.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    #[must_use]
    pub fn new() -> Self {
        let mut p = Page { buf: Box::new([0u8; PAGE_SIZE]) };
        p.set_slot_count(0);
        p.set_free_end(PAGE_SIZE as u16);
        p.set_dead_bytes(0);
        p
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.buf[0], self.buf[1]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.buf[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes([self.buf[2], self.buf[3]])
    }

    fn set_free_end(&mut self, v: u16) {
        self.buf[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn dead_bytes(&self) -> u16 {
        u16::from_le_bytes([self.buf[4], self.buf[5]])
    }

    fn set_dead_bytes(&mut self, v: u16) {
        self.buf[4..6].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let base = HEADER_LEN + slot as usize * SLOT_LEN;
        let off = u16::from_le_bytes([self.buf[base], self.buf[base + 1]]);
        let len = u16::from_le_bytes([self.buf[base + 2], self.buf[base + 3]]);
        (off, len)
    }

    fn set_slot_entry(&mut self, slot: u16, off: u16, len: u16) {
        let base = HEADER_LEN + slot as usize * SLOT_LEN;
        self.buf[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.buf[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes of contiguous free space between directory and record area.
    #[must_use]
    pub fn contiguous_free(&self) -> usize {
        let dir_end = HEADER_LEN + self.slot_count() as usize * SLOT_LEN;
        self.free_end() as usize - dir_end
    }

    /// Total reclaimable free space (contiguous + dead).
    #[must_use]
    pub fn total_free(&self) -> usize {
        self.contiguous_free() + self.dead_bytes() as usize
    }

    /// Number of live (non-tombstone) records.
    #[must_use]
    pub fn live_count(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| {
                let (off, len) = self.slot_entry(s);
                off != TOMBSTONE_OFFSET && len & DELETED_FLAG == 0
            })
            .count()
    }

    /// Whether a record of `len` bytes can be inserted (possibly after
    /// compaction), accounting for a potentially-new directory slot.
    #[must_use]
    pub fn can_insert(&self, len: usize) -> bool {
        let slot_cost = if self.free_tombstone().is_some() { 0 } else { SLOT_LEN };
        self.total_free() >= len + slot_cost
    }

    fn free_tombstone(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == TOMBSTONE_OFFSET)
    }

    /// Inserts a record, returning its slot, or `None` if it cannot fit
    /// even after compaction.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if record.is_empty() || record.len() > PAGE_SIZE - HEADER_LEN - SLOT_LEN {
            return None;
        }
        if !self.can_insert(record.len()) {
            return None;
        }
        let reuse = self.free_tombstone();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_LEN };
        if self.contiguous_free() < record.len() + slot_cost {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= record.len() + slot_cost);
        let new_end = self.free_end() - record.len() as u16;
        self.buf[new_end as usize..new_end as usize + record.len()].copy_from_slice(record);
        self.set_free_end(new_end);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        self.set_slot_entry(slot, new_end, record.len() as u16);
        Some(slot)
    }

    /// Places a record at a *specific* slot — used only by recovery redo,
    /// which must reproduce the row addresses recorded in the WAL. The
    /// slot directory is extended with tombstones as needed; the target
    /// slot must not hold a live record.
    pub fn insert_at(&mut self, slot: u16, record: &[u8]) -> PstmResult<()> {
        if record.is_empty() {
            return Err(PstmError::internal("empty record in redo"));
        }
        if slot < self.slot_count() && self.slot_entry(slot).0 != TOMBSTONE_OFFSET {
            return Err(PstmError::internal(format!("redo into live slot {slot}")));
        }
        let new_slots = (slot + 1).saturating_sub(self.slot_count()) as usize;
        let need = record.len() + new_slots * SLOT_LEN;
        if self.total_free() < need {
            return Err(PstmError::internal(format!(
                "page cannot host redo record of {} bytes at slot {slot}",
                record.len()
            )));
        }
        if self.contiguous_free() < need {
            self.compact();
        }
        while self.slot_count() <= slot {
            let s = self.slot_count();
            self.set_slot_count(s + 1);
            self.set_slot_entry(s, TOMBSTONE_OFFSET, 0);
        }
        let new_end = self.free_end() - record.len() as u16;
        self.buf[new_end as usize..new_end as usize + record.len()].copy_from_slice(record);
        self.set_free_end(new_end);
        self.set_slot_entry(slot, new_end, record.len() as u16);
        Ok(())
    }

    /// Returns the record at `slot`, or `None` if the slot is absent or
    /// deleted.
    #[must_use]
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE_OFFSET || len & DELETED_FLAG != 0 {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Rewrites the record at `slot`. Returns `Ok(true)` on success and
    /// `Ok(false)` if the page cannot hold the longer record even after
    /// compaction (the caller must relocate the row to another page).
    pub fn update(&mut self, slot: u16, record: &[u8]) -> PstmResult<bool> {
        if self.get(slot).is_none() {
            return Err(PstmError::NotFound(format!("slot {slot} in page")));
        }
        let (off, len) = self.slot_entry(slot);
        if record.len() <= len as usize {
            // In-place rewrite; excess old bytes become dead.
            self.buf[off as usize..off as usize + record.len()].copy_from_slice(record);
            self.set_slot_entry(slot, off, record.len() as u16);
            self.set_dead_bytes(self.dead_bytes() + (len - record.len() as u16));
            return Ok(true);
        }
        // Re-append: the old copy becomes dead space first so compaction
        // accounting stays truthful.
        self.set_dead_bytes(self.dead_bytes() + len);
        self.set_slot_entry(slot, TOMBSTONE_OFFSET, 0);
        if self.total_free() < record.len() {
            // Restore the slot so the row is not lost on a failed grow.
            self.set_slot_entry(slot, off, len);
            self.set_dead_bytes(self.dead_bytes() - len);
            return Ok(false);
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let new_end = self.free_end() - record.len() as u16;
        self.buf[new_end as usize..new_end as usize + record.len()].copy_from_slice(record);
        self.set_free_end(new_end);
        self.set_slot_entry(slot, new_end, record.len() as u16);
        Ok(true)
    }

    /// Deletes the record at `slot` immediately (tombstones the slot and
    /// reclaims its bytes). For transactional deletes use
    /// [`Page::mark_deleted`] + [`Page::purge`]/[`Page::undelete`] so the
    /// space cannot be reused before the deleting transaction commits.
    pub fn delete(&mut self, slot: u16) -> PstmResult<()> {
        if self.get(slot).is_none() {
            return Err(PstmError::NotFound(format!("slot {slot} in page")));
        }
        let (_, len) = self.slot_entry(slot);
        self.set_slot_entry(slot, TOMBSTONE_OFFSET, 0);
        self.set_dead_bytes(self.dead_bytes() + len);
        Ok(())
    }

    /// Marks a live record logically deleted: readers no longer see it,
    /// but its slot and bytes stay reserved until [`Page::purge`] (commit)
    /// or [`Page::undelete`] (abort).
    pub fn mark_deleted(&mut self, slot: u16) -> PstmResult<()> {
        if self.get(slot).is_none() {
            return Err(PstmError::NotFound(format!("slot {slot} in page")));
        }
        let (off, len) = self.slot_entry(slot);
        self.set_slot_entry(slot, off, len | DELETED_FLAG);
        Ok(())
    }

    /// Reverses [`Page::mark_deleted`].
    pub fn undelete(&mut self, slot: u16) -> PstmResult<()> {
        if slot >= self.slot_count() {
            return Err(PstmError::NotFound(format!("slot {slot} in page")));
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE_OFFSET || len & DELETED_FLAG == 0 {
            return Err(PstmError::internal(format!("slot {slot} is not marked deleted")));
        }
        self.set_slot_entry(slot, off, len & !DELETED_FLAG);
        Ok(())
    }

    /// Finalizes a [`Page::mark_deleted`]: the slot becomes a reusable
    /// tombstone and the record bytes become reclaimable dead space.
    pub fn purge(&mut self, slot: u16) -> PstmResult<()> {
        if slot >= self.slot_count() {
            return Err(PstmError::NotFound(format!("slot {slot} in page")));
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE_OFFSET || len & DELETED_FLAG == 0 {
            return Err(PstmError::internal(format!("slot {slot} is not marked deleted")));
        }
        self.set_slot_entry(slot, TOMBSTONE_OFFSET, 0);
        self.set_dead_bytes(self.dead_bytes() + (len & !DELETED_FLAG));
        Ok(())
    }

    /// Rewrites the record area densely, eliminating dead space. Slot
    /// numbers are stable (RowIds remain valid).
    pub fn compact(&mut self) {
        // Every non-tombstone slot keeps its bytes — including records
        // merely *marked* deleted, whose space is still reserved for a
        // possible undelete.
        let mut records: Vec<(u16, u16, Vec<u8>)> = (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                if off == TOMBSTONE_OFFSET {
                    return None;
                }
                let real_len = (len & !DELETED_FLAG) as usize;
                Some((s, len, self.buf[off as usize..off as usize + real_len].to_vec()))
            })
            .collect();
        // Rewrite from the page end downward, preserving slot order for
        // determinism.
        records.sort_by_key(|(s, _, _)| *s);
        let mut end = PAGE_SIZE as u16;
        for (slot, flagged_len, rec) in records {
            end -= rec.len() as u16;
            self.buf[end as usize..end as usize + rec.len()].copy_from_slice(&rec);
            self.set_slot_entry(slot, end, flagged_len);
        }
        self.set_free_end(end);
        self.set_dead_bytes(0);
    }

    /// Iterator over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Serializes the page image followed by a checksum.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PAGE_SIZE + 4);
        out.extend_from_slice(&self.buf[..]);
        out.extend_from_slice(&crate::codec::checksum(&self.buf[..]).to_le_bytes());
        out
    }

    /// Deserializes a page image, verifying length and checksum.
    pub fn from_bytes(bytes: &[u8]) -> PstmResult<Self> {
        if bytes.len() != PAGE_SIZE + 4 {
            return Err(PstmError::WalCorrupt(format!(
                "page image has {} bytes, expected {}",
                bytes.len(),
                PAGE_SIZE + 4
            )));
        }
        let (img, sum) = bytes.split_at(PAGE_SIZE);
        let expect = u32::from_le_bytes(sum.try_into().unwrap());
        if crate::codec::checksum(img) != expect {
            return Err(PstmError::WalCorrupt("page checksum mismatch".into()));
        }
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf.copy_from_slice(img);
        Ok(Page { buf })
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("live", &self.live_count())
            .field("contiguous_free", &self.contiguous_free())
            .field("dead", &self.dead_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_round_trip() {
        let mut p = Page::new();
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_ne!(s1, s2);
        assert_eq!(p.get(s1).unwrap(), b"hello");
        assert_eq!(p.get(s2).unwrap(), b"world!");
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_tombstones_and_reuses_slot() {
        let mut p = Page::new();
        let s1 = p.insert(b"aaaa").unwrap();
        p.delete(s1).unwrap();
        assert!(p.get(s1).is_none());
        let s2 = p.insert(b"bbbb").unwrap();
        assert_eq!(s1, s2, "tombstoned slot should be reused");
        assert_eq!(p.get(s2).unwrap(), b"bbbb");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new();
        let s = p.insert(b"0123456789").unwrap();
        assert!(p.update(s, b"short").unwrap());
        assert_eq!(p.get(s).unwrap(), b"short");
        assert!(p.update(s, b"a much longer record than before").unwrap());
        assert_eq!(p.get(s).unwrap(), b"a much longer record than before");
    }

    #[test]
    fn update_missing_slot_errors() {
        let mut p = Page::new();
        assert!(p.update(0, b"x").is_err());
        let s = p.insert(b"x").unwrap();
        p.delete(s).unwrap();
        assert!(p.update(s, b"y").is_err());
        assert!(p.delete(s).is_err());
    }

    #[test]
    fn page_fills_and_rejects_when_full() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 4096 - 8 header; each record costs 100 + 4 directory bytes.
        assert_eq!(n, (PAGE_SIZE - HEADER_LEN) / 104);
        assert!(!p.can_insert(100));
        assert!(p.can_insert(p.contiguous_free().saturating_sub(SLOT_LEN)));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = Page::new();
        let rec = [1u8; 200];
        let mut slots = Vec::new();
        while let Some(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record, then insert a large one that only
        // fits after compaction.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let big = vec![9u8; 600];
        let s = p.insert(&big).expect("fits after compaction");
        assert_eq!(p.get(s).unwrap(), &big[..]);
        // Survivors are intact.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn failed_grow_keeps_old_record() {
        let mut p = Page::new();
        let s = p.insert(&[3u8; 64]).unwrap();
        while p.insert(&[5u8; 64]).is_some() {}
        // Now ask the first record to grow beyond anything available.
        let grown = p.update(s, &vec![9u8; 2000]).unwrap();
        assert!(!grown);
        assert_eq!(p.get(s).unwrap(), &[3u8; 64][..]);
    }

    #[test]
    fn serialization_round_trips_and_checksums() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let bytes = p.to_bytes();
        let q = Page::from_bytes(&bytes).unwrap();
        assert_eq!(q.get(0).unwrap(), b"persist me");

        let mut corrupt = bytes.clone();
        corrupt[100] ^= 0xFF;
        assert!(Page::from_bytes(&corrupt).is_err());
        assert!(Page::from_bytes(&bytes[..100]).is_err());
    }

    #[test]
    fn empty_and_oversized_records_rejected() {
        let mut p = Page::new();
        assert!(p.insert(b"").is_none());
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
    }

    proptest! {
        /// Random insert/update/delete sequences preserve a shadow model.
        #[test]
        fn prop_page_matches_shadow(ops in prop::collection::vec(
            prop_oneof![
                prop::collection::vec(any::<u8>(), 1..300).prop_map(PageOp::Insert),
                (any::<u16>(), prop::collection::vec(any::<u8>(), 1..300)).prop_map(|(s, r)| PageOp::Update(s, r)),
                any::<u16>().prop_map(PageOp::Delete),
            ],
            0..80,
        )) {
            let mut page = Page::new();
            let mut shadow: std::collections::BTreeMap<u16, Vec<u8>> = Default::default();
            for op in ops {
                match op {
                    PageOp::Insert(rec) => {
                        if let Some(slot) = page.insert(&rec) {
                            shadow.insert(slot, rec);
                        }
                    }
                    PageOp::Update(slot, rec) => {
                        if let std::collections::btree_map::Entry::Occupied(mut e) = shadow.entry(slot) {
                            if page.update(slot, &rec).unwrap() {
                                e.insert(rec);
                            }
                        } else {
                            prop_assert!(page.update(slot, &rec).is_err());
                        }
                    }
                    PageOp::Delete(slot) => {
                        if shadow.remove(&slot).is_some() {
                            page.delete(slot).unwrap();
                        } else {
                            prop_assert!(page.delete(slot).is_err());
                        }
                    }
                }
            }
            prop_assert_eq!(page.live_count(), shadow.len());
            for (slot, rec) in &shadow {
                prop_assert_eq!(page.get(*slot).unwrap(), &rec[..]);
            }
            // Round-trip through bytes preserves everything.
            let back = Page::from_bytes(&page.to_bytes()).unwrap();
            for (slot, rec) in &shadow {
                prop_assert_eq!(back.get(*slot).unwrap(), &rec[..]);
            }
        }
    }

    #[derive(Debug, Clone)]
    enum PageOp {
        Insert(Vec<u8>),
        Update(u16, Vec<u8>),
        Delete(u16),
    }
}
