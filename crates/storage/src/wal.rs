//! The write-ahead log.
//!
//! Records are serialized as JSON payloads wrapped in a binary frame:
//!
//! ```text
//! | len: u32 | checksum: u32 | payload: len bytes |
//! ```
//!
//! The checksum covers **both** the length field and the payload, so a
//! corrupted length that still points inside the buffer is detected as
//! corruption rather than silently truncating the log. A frame whose
//! claimed length runs past the end of the buffer is indistinguishable
//! from a write cut short by power loss and is treated as a torn tail —
//! the same stop-at-first-invalid-record policy real redo passes use.
//! The log lives in an in-memory byte buffer standing in for a log
//! device; [`Wal::crash_truncate`] chops an arbitrary suffix to emulate a
//! crash mid-write in tests.

use crate::catalog::TableId;
use crate::row::{Row, RowId};
use pstm_obs::frame::{next_frame, write_frame, FrameStep};
use pstm_obs::{TraceEvent, Tracer};
use pstm_types::{FaultDecision, FaultSite, PstmError, PstmResult, SharedFaultHook, TxnId, Value};
use serde::{Deserialize, Serialize};

/// Log sequence number: the byte offset of a record's frame in the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lsn(pub u64);

/// One redo/undo record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Transaction start.
    Begin {
        /// The starting transaction.
        txn: TxnId,
    },
    /// Row inserted (after-image; `row_id` is the address that must be
    /// reproduced on redo).
    Insert {
        /// Writing transaction.
        txn: TxnId,
        /// Target table.
        table: TableId,
        /// Address the row received.
        row_id: RowId,
        /// Full after-image.
        row: Row,
    },
    /// Single-column update with before and after images.
    Update {
        /// Writing transaction.
        txn: TxnId,
        /// Target table.
        table: TableId,
        /// Updated row.
        row_id: RowId,
        /// Updated column index.
        column: usize,
        /// Value before the update (undo image).
        before: Value,
        /// Value after the update (redo image).
        after: Value,
    },
    /// Row deleted (before-image retained for undo).
    Delete {
        /// Writing transaction.
        txn: TxnId,
        /// Target table.
        table: TableId,
        /// Deleted row's address.
        row_id: RowId,
        /// Full before-image.
        row: Row,
    },
    /// Transaction committed — all its records are winners.
    Commit {
        /// The committing transaction.
        txn: TxnId,
    },
    /// Transaction aborted — its records are losers (runtime already
    /// undid them; recovery simply never redoes them).
    Abort {
        /// The aborting transaction.
        txn: TxnId,
    },
    /// Quiescent checkpoint: heap images were captured; the log before
    /// this point is no longer needed.
    Checkpoint,
    /// DDL: a table was created (autocommitted — replayed unconditionally
    /// so post-checkpoint DDL survives a crash).
    CreateTable {
        /// The new table's schema.
        schema: crate::schema::TableSchema,
        /// Its CHECK constraints.
        constraints: Vec<crate::constraint::Constraint>,
    },
    /// DDL: a secondary index was created.
    CreateIndex {
        /// The indexed table.
        table: TableId,
        /// The indexed column.
        column: usize,
    },
}

impl LogRecord {
    /// The transaction a record belongs to, if any.
    #[must_use]
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => Some(*txn),
            LogRecord::Checkpoint
            | LogRecord::CreateTable { .. }
            | LogRecord::CreateIndex { .. } => None,
        }
    }
}

/// Serializes `rec` and appends its complete frame to `out` via the
/// shared framing in [`pstm_obs::frame`], returning the frame's size in
/// bytes. Writes nothing on a serialization error.
fn frame_into(rec: &LogRecord, out: &mut Vec<u8>) -> PstmResult<u64> {
    let payload =
        serde_json::to_vec(rec).map_err(|e| PstmError::internal(format!("WAL serialize: {e}")))?;
    Ok(write_frame(&payload, out) as u64)
}

/// The append-only log device.
#[derive(Default)]
pub struct Wal {
    buf: Vec<u8>,
    /// Number of records appended — exposed for write-amplification stats.
    appended: u64,
    /// Reused frame-assembly buffer: appends in steady state allocate
    /// only the serialized payload, not a fresh frame per record.
    scratch: Vec<u8>,
    tracer: Tracer,
    /// Fault seam consulted on every append (see `pstm_types::fault`);
    /// `None` outside chaos runs.
    hook: Option<SharedFaultHook>,
}

impl Wal {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Wal::default()
    }

    /// Routes the log's flush events to `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs (or with `None`, removes) the fault seam consulted on
    /// every append. Heap mutations are logged *after* they happen in
    /// this engine, so a log write that fails cannot be survived by
    /// retrying — every non-`Proceed` decision here is fatal (see
    /// [`Wal::append`]).
    pub fn set_fault_hook(&mut self, hook: Option<SharedFaultHook>) {
        self.hook = hook;
    }

    /// Appends a record, returning its LSN.
    ///
    /// This is the only sanctioned path that grows the log device (the
    /// `wal-seam` lint in `pstm-check` enforces it), which makes it the
    /// natural [`FaultSite::WalAppend`] seam: an injected `Io` or `Crash`
    /// kills the simulated process before any byte lands, and
    /// `Torn { keep }` writes only a prefix of the frame first — the torn
    /// page write recovery must then discard.
    pub fn append(&mut self, rec: &LogRecord) -> PstmResult<Lsn> {
        let _phase = pstm_obs::prof::PhaseTimer::start(pstm_obs::prof::CommitPhase::WalAppend);
        let lsn = Lsn(self.buf.len() as u64);
        self.scratch.clear();
        let frame_bytes = frame_into(rec, &mut self.scratch)?;
        if let Some(hook) = self.hook.as_ref() {
            match hook.decide(FaultSite::WalAppend) {
                FaultDecision::Proceed => {}
                FaultDecision::Torn { keep } => {
                    // Clamp so the frame is genuinely torn: at least the
                    // final byte is lost and recovery sees a torn tail.
                    let keep = (keep as usize).min(self.scratch.len() - 1);
                    self.buf.extend_from_slice(&self.scratch[..keep]);
                    self.tracer.emit_unclocked(TraceEvent::FaultInjected {
                        site: FaultSite::WalAppend.label(),
                        action: "torn".into(),
                    });
                    return Err(PstmError::Crashed(FaultSite::WalAppend.label()));
                }
                FaultDecision::Io | FaultDecision::Crash => {
                    // The heap already mutated before this append, so an
                    // unlogged-but-applied write cannot be tolerated: a
                    // failing log device means the process dies here.
                    self.tracer.emit_unclocked(TraceEvent::FaultInjected {
                        site: FaultSite::WalAppend.label(),
                        action: "crash".into(),
                    });
                    return Err(PstmError::Crashed(FaultSite::WalAppend.label()));
                }
            }
        }
        self.buf.extend_from_slice(&self.scratch);
        self.appended += 1;
        self.tracer.emit_unclocked(TraceEvent::WalFlush { lsn: lsn.0, bytes: frame_bytes });
        Ok(lsn)
    }

    /// Appends a group of records as **one framed flush**: every frame is
    /// assembled in the scratch buffer and the log device grows by a
    /// single contiguous write, amortizing the flush cost the group-commit
    /// layer exists to save. Each record keeps its own frame and `Lsn`, so
    /// readers and recovery are oblivious to grouping.
    ///
    /// The fault seam is consulted **once per group** — the group is one
    /// device write. `Torn { keep }` keeps a prefix of the whole group
    /// (clamped so at least the final frame is torn): leading frames
    /// survive intact, the tear is confined to the tail, and recovery's
    /// stop-at-first-invalid policy discards exactly the torn suffix. An
    /// `Io`/`Crash` decision lands nothing, as in [`Wal::append`].
    // pstm-lockgraph: flush-point
    pub fn append_batch(&mut self, recs: &[LogRecord]) -> PstmResult<Vec<Lsn>> {
        let _phase = pstm_obs::prof::PhaseTimer::start(pstm_obs::prof::CommitPhase::WalAppend);
        if recs.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.buf.len() as u64;
        let mut lsns = Vec::with_capacity(recs.len());
        let mut frame_bytes = Vec::with_capacity(recs.len());
        self.scratch.clear();
        for rec in recs {
            lsns.push(Lsn(base + self.scratch.len() as u64));
            frame_bytes.push(frame_into(rec, &mut self.scratch)?);
        }
        if let Some(hook) = self.hook.as_ref() {
            match hook.decide(FaultSite::WalAppend) {
                FaultDecision::Proceed => {}
                FaultDecision::Torn { keep } => {
                    let keep = (keep as usize).min(self.scratch.len() - 1);
                    self.buf.extend_from_slice(&self.scratch[..keep]);
                    self.tracer.emit_unclocked(TraceEvent::FaultInjected {
                        site: FaultSite::WalAppend.label(),
                        action: "torn".into(),
                    });
                    return Err(PstmError::Crashed(FaultSite::WalAppend.label()));
                }
                FaultDecision::Io | FaultDecision::Crash => {
                    self.tracer.emit_unclocked(TraceEvent::FaultInjected {
                        site: FaultSite::WalAppend.label(),
                        action: "crash".into(),
                    });
                    return Err(PstmError::Crashed(FaultSite::WalAppend.label()));
                }
            }
        }
        self.buf.extend_from_slice(&self.scratch);
        self.appended += recs.len() as u64;
        // One WalFlush per record: replayed counters must not depend on
        // how appends were grouped.
        for (lsn, bytes) in lsns.iter().zip(&frame_bytes) {
            self.tracer.emit_unclocked(TraceEvent::WalFlush { lsn: lsn.0, bytes: *bytes });
        }
        Ok(lsns)
    }

    /// Size of the log in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Number of records appended since creation/truncation.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Reads every intact record from `from` onward. A torn final frame is
    /// silently dropped (that is the crash contract); corruption *before*
    /// the tail is an error.
    pub fn records_from(&self, from: Lsn) -> PstmResult<Vec<(Lsn, LogRecord)>> {
        let mut out = Vec::new();
        let mut pos = from.0 as usize;
        if pos > self.buf.len() {
            return Err(PstmError::WalCorrupt(format!(
                "start LSN {} beyond log end {}",
                pos,
                self.buf.len()
            )));
        }
        while pos < self.buf.len() {
            let lsn = Lsn(pos as u64);
            match next_frame(&self.buf, pos) {
                FrameStep::Frame { payload, end } => {
                    let rec: LogRecord = serde_json::from_slice(payload).map_err(|e| {
                        PstmError::WalCorrupt(format!("bad payload at LSN {}: {e}", lsn.0))
                    })?;
                    out.push((lsn, rec));
                    pos = end;
                }
                // Torn final write or a length running past the buffer:
                // stop replay here (the crash contract).
                FrameStep::Torn => break,
                FrameStep::Corrupt => {
                    return Err(PstmError::WalCorrupt(format!("bad checksum at LSN {}", lsn.0)));
                }
            }
        }
        Ok(out)
    }

    /// All intact records.
    pub fn records(&self) -> PstmResult<Vec<(Lsn, LogRecord)>> {
        self.records_from(Lsn(0))
    }

    /// Drops the log prefix up to (excluding) `upto` — used after a
    /// checkpoint. Returns the new origin LSN of the retained suffix
    /// (always `Lsn(0)` in the compacted buffer).
    pub fn truncate_prefix(&mut self, upto: Lsn) -> PstmResult<()> {
        if upto.0 as usize > self.buf.len() {
            return Err(PstmError::WalCorrupt("truncate beyond log end".into()));
        }
        self.buf.drain(..upto.0 as usize);
        Ok(())
    }

    /// Test/chaos hook: chops the last `bytes` bytes, emulating a crash
    /// that tore the final write.
    pub fn crash_truncate(&mut self, bytes: usize) {
        let keep = self.buf.len().saturating_sub(bytes);
        self.buf.truncate(keep);
    }

    /// Test/chaos hook: flips a byte mid-log to emulate media corruption.
    pub fn corrupt_byte(&mut self, offset: usize) {
        self.corrupt_byte_with(offset, 0xFF);
    }

    /// Test/chaos hook: XORs a byte with `mask` — finer-grained than
    /// [`Wal::corrupt_byte`] for targeting specific frame fields.
    pub fn corrupt_byte_with(&mut self, offset: usize, mask: u8) {
        if let Some(b) = self.buf.get_mut(offset) {
            *b ^= mask;
        }
    }

    /// Physically discards a torn tail left by a crash mid-append, so that
    /// post-recovery appends land on a frame boundary instead of behind
    /// the garbage (where a *second* recovery would stop at the tear and
    /// lose them). Returns the number of bytes dropped. Corruption before
    /// the tail is left untouched — that is a media error for
    /// [`Wal::records_from`] to report, not a tear to repair.
    pub fn trim_torn_tail(&mut self) -> usize {
        let mut pos = 0usize;
        while pos < self.buf.len() {
            match next_frame(&self.buf, pos) {
                FrameStep::Frame { end, .. } => pos = end,
                FrameStep::Torn => break,
                FrameStep::Corrupt => return 0, // mid-log corruption: not ours to repair
            }
        }
        let dropped = self.buf.len() - pos;
        self.buf.truncate(pos);
        dropped
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("bytes", &self.buf.len())
            .field("appended", &self.appended)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_types::Value;

    fn sample_records() -> Vec<LogRecord> {
        let t = TxnId(1);
        let table = TableId(0);
        vec![
            LogRecord::Begin { txn: t },
            LogRecord::Insert {
                txn: t,
                table,
                row_id: RowId::new(0, 0),
                row: Row::new(vec![Value::Int(1), Value::Int(100)]),
            },
            LogRecord::Update {
                txn: t,
                table,
                row_id: RowId::new(0, 0),
                column: 1,
                before: Value::Int(100),
                after: Value::Int(99),
            },
            LogRecord::Delete {
                txn: t,
                table,
                row_id: RowId::new(0, 0),
                row: Row::new(vec![Value::Int(1), Value::Int(99)]),
            },
            LogRecord::Commit { txn: t },
        ]
    }

    #[test]
    fn append_read_round_trip() {
        let mut wal = Wal::new();
        let recs = sample_records();
        let lsns: Vec<Lsn> = recs.iter().map(|r| wal.append(r).unwrap()).collect();
        assert!(lsns.windows(2).all(|w| w[0] < w[1]));
        let back = wal.records().unwrap();
        assert_eq!(back.len(), recs.len());
        for ((lsn, rec), (expect_lsn, expect)) in back.iter().zip(lsns.iter().zip(&recs)) {
            assert_eq!(lsn, expect_lsn);
            assert_eq!(rec, expect);
        }
    }

    #[test]
    fn records_from_mid_log() {
        let mut wal = Wal::new();
        let recs = sample_records();
        let lsns: Vec<Lsn> = recs.iter().map(|r| wal.append(r).unwrap()).collect();
        let tail = wal.records_from(lsns[2]).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].1, recs[2]);
    }

    #[test]
    fn torn_tail_is_dropped_not_an_error() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        for cut in 1..40 {
            let mut torn = Wal::new();
            torn.buf = wal.buf.clone();
            torn.crash_truncate(cut);
            let recs = torn.records().unwrap();
            assert!(recs.len() < 5, "cut {cut} should lose the tail record");
            assert!(recs.len() >= 4 || cut > 10, "small cuts only lose one record");
        }
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        // Corrupt inside the first record's payload (frame header is 8
        // bytes): the checksum must fail and, because intact records
        // follow, this is corruption, not a torn tail.
        wal.corrupt_byte(12);
        assert!(matches!(wal.records(), Err(PstmError::WalCorrupt(_))));
    }

    #[test]
    fn truncate_prefix_after_checkpoint() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let cp = wal.append(&LogRecord::Checkpoint).unwrap();
        wal.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        wal.truncate_prefix(cp).unwrap();
        let recs = wal.records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].1, LogRecord::Checkpoint);
        assert_eq!(recs[1].1, LogRecord::Begin { txn: TxnId(2) });
    }

    #[test]
    fn truncate_beyond_end_errors() {
        let mut wal = Wal::new();
        assert!(wal.truncate_prefix(Lsn(10)).is_err());
        assert!(wal.records_from(Lsn(10)).is_err());
    }

    #[test]
    fn record_txn_accessor() {
        assert_eq!(LogRecord::Begin { txn: TxnId(3) }.txn(), Some(TxnId(3)));
        assert_eq!(LogRecord::Checkpoint.txn(), None);
    }

    #[test]
    fn trim_torn_tail_restores_appendability() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let intact = wal.records().unwrap().len();
        wal.crash_truncate(7); // tear the final frame
        let dropped = wal.trim_torn_tail();
        assert!(dropped > 0, "a torn frame must be physically discarded");
        assert_eq!(wal.records().unwrap().len(), intact - 1);
        // The point of trimming: new appends are readable afterwards.
        wal.append(&LogRecord::Commit { txn: TxnId(9) }).unwrap();
        let recs = wal.records().unwrap();
        assert_eq!(recs.last().unwrap().1, LogRecord::Commit { txn: TxnId(9) });
        // Idempotent: nothing more to trim on a clean log.
        assert_eq!(wal.trim_torn_tail(), 0);
    }

    #[test]
    fn trim_torn_tail_leaves_mid_log_corruption_alone() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let before = wal.len_bytes();
        wal.corrupt_byte(12); // payload of the first record
        assert_eq!(wal.trim_torn_tail(), 0);
        assert_eq!(wal.len_bytes(), before, "media corruption is not a tear");
        assert!(matches!(wal.records(), Err(PstmError::WalCorrupt(_))));
    }

    struct DecideOnNth {
        nth: std::sync::atomic::AtomicU64,
        decision: FaultDecision,
    }
    impl FaultHook for DecideOnNth {
        fn decide(&self, _site: FaultSite) -> FaultDecision {
            use std::sync::atomic::Ordering;
            if self.nth.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.decision
            } else {
                FaultDecision::Proceed
            }
        }
    }
    use pstm_types::FaultHook;

    #[test]
    fn wal_append_crash_fault_writes_nothing() {
        let mut wal = Wal::new();
        wal.set_fault_hook(Some(std::sync::Arc::new(DecideOnNth {
            nth: std::sync::atomic::AtomicU64::new(3),
            decision: FaultDecision::Crash,
        })));
        let recs = sample_records();
        wal.append(&recs[0]).unwrap();
        wal.append(&recs[1]).unwrap();
        let before = wal.len_bytes();
        let err = wal.append(&recs[2]).unwrap_err();
        assert!(matches!(err, PstmError::Crashed(ref s) if s == "wal-append"));
        assert_eq!(wal.len_bytes(), before, "a crashed append leaves no bytes");
        assert_eq!(wal.records().unwrap().len(), 2);
    }

    #[test]
    fn append_batch_is_byte_identical_to_sequential_appends() {
        let recs = sample_records();
        let mut one_by_one = Wal::new();
        let solo_lsns: Vec<Lsn> = recs.iter().map(|r| one_by_one.append(r).unwrap()).collect();
        let mut batched = Wal::new();
        let lsns = batched.append_batch(&recs).unwrap();
        assert_eq!(lsns, solo_lsns, "grouping must not move any record's LSN");
        assert_eq!(batched.buf, one_by_one.buf, "grouping must not change the device image");
        assert_eq!(batched.appended(), recs.len() as u64);
        let back = batched.records().unwrap();
        assert_eq!(back.len(), recs.len());
        for ((lsn, rec), (expect_lsn, expect)) in back.iter().zip(lsns.iter().zip(&recs)) {
            assert_eq!(lsn, expect_lsn);
            assert_eq!(rec, expect);
        }
        assert!(batched.append_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn torn_batch_keeps_leading_frames_and_recovery_drops_the_tail() {
        // Tear the group so the first record's frame survives whole: the
        // intact prefix must replay, the torn suffix must trim away, and
        // no frame may surface partially.
        let recs = sample_records();
        let first_frame = {
            let mut probe = Wal::new();
            probe.append(&recs[0]).unwrap();
            probe.len_bytes()
        };
        let mut wal = Wal::new();
        wal.set_fault_hook(Some(std::sync::Arc::new(DecideOnNth {
            nth: std::sync::atomic::AtomicU64::new(1),
            decision: FaultDecision::Torn { keep: (first_frame + 3) as u32 },
        })));
        let err = wal.append_batch(&recs).unwrap_err();
        assert!(matches!(err, PstmError::Crashed(ref s) if s == "wal-append"));
        assert_eq!(wal.len_bytes(), first_frame + 3, "exactly `keep` bytes land");
        let survivors = wal.records().unwrap();
        assert_eq!(survivors.len(), 1, "only the fully-written leading frame replays");
        assert_eq!(survivors[0].1, recs[0]);
        assert_eq!(wal.trim_torn_tail(), 3);
        assert_eq!(wal.records().unwrap().len(), 1);
    }

    #[test]
    fn torn_batch_keep_clamps_so_the_tail_frame_is_always_torn() {
        let recs = sample_records();
        let mut wal = Wal::new();
        wal.set_fault_hook(Some(std::sync::Arc::new(DecideOnNth {
            nth: std::sync::atomic::AtomicU64::new(1),
            decision: FaultDecision::Torn { keep: u32::MAX },
        })));
        wal.append_batch(&recs).unwrap_err();
        let survivors = wal.records().unwrap();
        assert!(survivors.len() < recs.len(), "the final frame must not land whole");
        assert!(wal.trim_torn_tail() > 0);
    }

    #[test]
    fn crashed_batch_writes_nothing() {
        let recs = sample_records();
        let mut wal = Wal::new();
        wal.append(&recs[0]).unwrap();
        let before = wal.len_bytes();
        wal.set_fault_hook(Some(std::sync::Arc::new(DecideOnNth {
            nth: std::sync::atomic::AtomicU64::new(1),
            decision: FaultDecision::Crash,
        })));
        let err = wal.append_batch(&recs).unwrap_err();
        assert!(matches!(err, PstmError::Crashed(_)));
        assert_eq!(wal.len_bytes(), before, "a crashed group leaves no bytes");
        assert_eq!(wal.records().unwrap().len(), 1);
    }

    #[test]
    fn wal_append_torn_fault_leaves_partial_frame() {
        let mut wal = Wal::new();
        wal.set_fault_hook(Some(std::sync::Arc::new(DecideOnNth {
            nth: std::sync::atomic::AtomicU64::new(2),
            decision: FaultDecision::Torn { keep: 11 },
        })));
        let recs = sample_records();
        wal.append(&recs[0]).unwrap();
        let before = wal.len_bytes();
        let err = wal.append(&recs[1]).unwrap_err();
        assert!(matches!(err, PstmError::Crashed(_)));
        assert_eq!(wal.len_bytes(), before + 11, "exactly `keep` bytes land");
        // Recovery reads the intact prefix; trim removes the tear.
        assert_eq!(wal.records().unwrap().len(), 1);
        assert_eq!(wal.trim_torn_tail(), 11);
        assert_eq!(wal.len_bytes(), before);
    }
}

#[cfg(test)]
mod frame_header_tests {
    use super::*;
    use pstm_types::TxnId;

    /// Regression (review finding): a corrupted *length* field mid-log
    /// must be detected as corruption when the claimed frame still lies
    /// within the buffer — not silently drop the rest of the log.
    #[test]
    fn corrupted_inline_length_is_corruption_not_torn_tail() {
        let mut wal = Wal::new();
        for i in 0..6 {
            wal.append(&LogRecord::Begin { txn: TxnId(i) }).unwrap();
        }
        // Nudge the first frame's length by one: the frame still lies
        // within the buffer but the checksum (which covers the length)
        // no longer matches.
        wal.corrupt_byte_with(0, 0x01);
        assert!(matches!(wal.records(), Err(PstmError::WalCorrupt(_))));
    }

    /// A length running past the buffer end is treated as a torn tail
    /// (stop-at-first-invalid, like a real redo pass).
    #[test]
    fn oversized_length_stops_replay() {
        let mut wal = Wal::new();
        for i in 0..3 {
            wal.append(&LogRecord::Begin { txn: TxnId(i) }).unwrap();
        }
        // Blow up the *last* record's length field far past the buffer.
        let recs = wal.records().unwrap();
        let last_lsn = recs.last().unwrap().0;
        wal.corrupt_byte(last_lsn.0 as usize + 2); // high byte of len
        let survivors = wal.records().unwrap();
        assert_eq!(survivors.len(), 2, "replay stops before the bad frame");
    }
}
