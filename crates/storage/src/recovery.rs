//! Crash recovery: redo-only replay of committed work over the last
//! quiescent checkpoint.
//!
//! The engine guarantees two things that make redo-only recovery correct:
//!
//! 1. checkpoints are quiescent — the image contains only committed data;
//! 2. runtime aborts undo their effects *before* the Abort record is
//!    written, so an aborted transaction's effects never need replaying.
//!
//! Recovery therefore: (analysis) scans the WAL suffix for `Commit`
//! records to build the winner set; (redo) replays, in log order, the
//! `Insert`/`Update`/`Delete` records of winners onto the checkpoint
//! image. Records of losers — transactions without a `Commit` — are
//! skipped entirely, which both rolls back in-flight transactions lost in
//! the crash and is consistent with runtime aborts (whose undo happened
//! before their records would matter). Secondary indexes are rebuilt from
//! the recovered heaps.

use crate::btree::BTreeIndex;
use crate::catalog::Catalog;
use crate::engine::{CheckpointImage, TableStore};
use crate::heap::HeapFile;
use crate::wal::{LogRecord, Wal};
use pstm_types::{PstmError, PstmResult, TxnId};
use std::collections::HashSet;

/// What a recovery pass saw — surfaced as a `Recovered` trace event so
/// chaos harnesses can account for redo work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct RecoveryStats {
    /// Committed transactions whose effects were replayed.
    pub(crate) winners: u64,
    /// Intact log records scanned.
    pub(crate) records: u64,
}

/// Rebuilds catalog + table stores from a checkpoint image and the WAL.
pub(crate) fn recover(
    checkpoint: &Option<CheckpointImage>,
    wal: &Wal,
) -> PstmResult<(Catalog, Vec<TableStore>, RecoveryStats)> {
    // Start from the checkpoint image, or empty state.
    let (mut catalog, mut heaps): (Catalog, Vec<HeapFile>) = match checkpoint {
        Some(cp) => {
            let mut catalog: Catalog = serde_json::from_slice(&cp.catalog_json)
                .map_err(|e| PstmError::WalCorrupt(format!("checkpoint catalog: {e}")))?;
            catalog.rebuild_lookup();
            let heaps = cp
                .heaps
                .iter()
                .map(|img| HeapFile::from_bytes(img))
                .collect::<PstmResult<Vec<_>>>()?;
            (catalog, heaps)
        }
        None => (Catalog::new(), Vec::new()),
    };

    let records = wal.records()?;

    // Analysis: find winners.
    let winners: HashSet<TxnId> = records
        .iter()
        .filter_map(|(_, r)| match r {
            LogRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();

    // Redo phase, in log order. DDL records are autocommitted and replay
    // unconditionally; DML replays only for winners.
    for (_, rec) in &records {
        match rec {
            LogRecord::CreateTable { schema, constraints } => {
                catalog.create_table(schema.clone(), constraints.clone())?;
                heaps.push(HeapFile::new());
                continue;
            }
            LogRecord::CreateIndex { table, column } => {
                catalog.create_index(*table, *column)?;
                continue;
            }
            _ => {}
        }
        let Some(txn) = rec.txn() else { continue };
        if !winners.contains(&txn) {
            continue;
        }
        match rec {
            LogRecord::Insert { table, row_id, row, .. } => {
                while heaps.len() <= table.0 as usize {
                    heaps.push(HeapFile::new());
                }
                heaps[table.0 as usize].materialize_at(*row_id, row)?;
            }
            LogRecord::Update { table, row_id, column, after, .. } => {
                let heap = heaps
                    .get_mut(table.0 as usize)
                    .ok_or_else(|| PstmError::WalCorrupt(format!("redo into missing {table}")))?;
                let mut row = heap.get(*row_id)?;
                row.set(*column, after.clone());
                heap.update(*row_id, &row)?;
            }
            LogRecord::Delete { table, row_id, .. } => {
                let heap = heaps
                    .get_mut(table.0 as usize)
                    .ok_or_else(|| PstmError::WalCorrupt(format!("redo into missing {table}")))?;
                heap.delete(*row_id)?;
            }
            _ => {}
        }
    }

    // DDL is WAL-logged, so catalog and heaps must line up exactly after
    // replay; a mismatch means a corrupt image.
    while heaps.len() < catalog.table_count() {
        heaps.push(HeapFile::new());
    }
    if heaps.len() > catalog.table_count() {
        return Err(PstmError::WalCorrupt(format!(
            "recovered {} heaps for {} catalogued tables",
            heaps.len(),
            catalog.table_count()
        )));
    }

    // Rebuild secondary indexes from the recovered heaps.
    let mut stores = Vec::with_capacity(heaps.len());
    for (tid, heap) in heaps.into_iter().enumerate() {
        let meta = catalog.meta(crate::catalog::TableId(tid as u32))?;
        let mut indexes = Vec::with_capacity(meta.indexes.len());
        for def in &meta.indexes {
            let mut idx = BTreeIndex::new();
            for (rid, row) in heap.scan() {
                if let Some(v) = row.get(def.column) {
                    idx.insert(v.clone(), rid);
                }
            }
            indexes.push(idx);
        }
        stores.push(TableStore { heap, indexes });
    }
    catalog.rebuild_lookup();
    let stats = RecoveryStats { winners: winners.len() as u64, records: records.len() as u64 };
    Ok((catalog, stores, stats))
}

#[cfg(test)]
mod tests {
    use crate::constraint::Constraint;
    use crate::engine::Database;
    use crate::row::Row;
    use crate::schema::{ColumnDef, TableSchema};
    use pstm_types::{TxnId, Value, ValueKind};

    fn setup() -> (Database, crate::catalog::TableId) {
        let db = Database::new();
        let schema = TableSchema::new(
            "Museum",
            vec![
                ColumnDef::new("id", ValueKind::Int),
                ColumnDef::new("free_tickets", ValueKind::Int),
            ],
        )
        .unwrap();
        let t = db.create_table(schema, vec![Constraint::non_negative("ft", 1)]).unwrap();
        db.create_index(t, 0).unwrap();
        db.checkpoint().unwrap(); // capture DDL so recovery sees the catalog
        (db, t)
    }

    fn museum(id: i64, free: i64) -> Row {
        Row::new(vec![Value::Int(id), Value::Int(free)])
    }

    #[test]
    fn committed_work_survives_crash() {
        let (db, t) = setup();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        let rid = db.insert(txn, t, museum(1, 50)).unwrap();
        db.update(txn, t, rid, 1, Value::Int(49)).unwrap();
        db.commit(txn).unwrap();

        db.simulate_crash_and_recover().unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(49));
        assert_eq!(db.lookup_eq(t, 0, &Value::Int(1)).unwrap(), vec![rid]);
    }

    #[test]
    fn uncommitted_work_vanishes_on_crash() {
        let (db, t) = setup();
        let committed = TxnId(1);
        db.begin(committed).unwrap();
        let keep = db.insert(committed, t, museum(1, 10)).unwrap();
        db.commit(committed).unwrap();

        let loser = TxnId(2);
        db.begin(loser).unwrap();
        db.insert(loser, t, museum(2, 20)).unwrap();
        db.update(loser, t, keep, 1, Value::Int(0)).unwrap();
        // No commit — crash now.
        db.simulate_crash_and_recover().unwrap();
        assert_eq!(db.row_count(t).unwrap(), 1);
        assert_eq!(db.get_col(t, keep, 1).unwrap(), Value::Int(10));
    }

    #[test]
    fn runtime_aborted_work_stays_undone_after_crash() {
        let (db, t) = setup();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        let rid = db.insert(txn, t, museum(1, 5)).unwrap();
        db.commit(txn).unwrap();

        let ab = TxnId(2);
        db.begin(ab).unwrap();
        db.update(ab, t, rid, 1, Value::Int(1)).unwrap();
        db.abort(ab).unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(5));

        db.simulate_crash_and_recover().unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(5));
    }

    #[test]
    fn torn_tail_drops_only_the_unfinished_transaction() {
        let (db, t) = setup();
        let t1 = TxnId(1);
        db.begin(t1).unwrap();
        let rid = db.insert(t1, t, museum(1, 7)).unwrap();
        db.commit(t1).unwrap();

        let t2 = TxnId(2);
        db.begin(t2).unwrap();
        db.update(t2, t, rid, 1, Value::Int(6)).unwrap();
        db.commit(t2).unwrap();

        // Tear enough bytes to destroy t2's Commit record: t2 becomes a
        // loser and its update must not survive.
        db.crash_with_torn_tail(10).unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(7));
    }

    #[test]
    fn checkpoint_then_more_work_then_crash() {
        let (db, t) = setup();
        let t1 = TxnId(1);
        db.begin(t1).unwrap();
        let rid = db.insert(t1, t, museum(1, 100)).unwrap();
        db.commit(t1).unwrap();
        db.checkpoint().unwrap();

        let t2 = TxnId(2);
        db.begin(t2).unwrap();
        db.update(t2, t, rid, 1, Value::Int(99)).unwrap();
        db.commit(t2).unwrap();

        db.simulate_crash_and_recover().unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(99));

        // Recovery is repeatable (idempotent from the same image+log).
        db.simulate_crash_and_recover().unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(99));
    }

    #[test]
    fn interleaved_winners_and_losers() {
        let (db, t) = setup();
        let a = TxnId(1);
        let b = TxnId(2);
        db.begin(a).unwrap();
        db.begin(b).unwrap();
        let ra = db.insert(a, t, museum(1, 1)).unwrap();
        let rb = db.insert(b, t, museum(2, 2)).unwrap();
        db.commit(a).unwrap();
        // b never commits.
        db.simulate_crash_and_recover().unwrap();
        assert!(db.get(t, ra).is_ok());
        assert!(db.get(t, rb).is_err());
    }

    /// Regression for the double-replay bug: after a torn-tail crash the
    /// torn frame's bytes used to linger in the log, so appends made
    /// *after* recovery landed behind the garbage — a second recovery
    /// stopped at the tear (or reported corruption) and silently lost the
    /// post-recovery committed work. `crash_with_torn_tail` now trims the
    /// tear physically, making recovery idempotent under double replay.
    #[test]
    fn recovery_is_idempotent_after_torn_tail_plus_new_work() {
        let (db, t) = setup();
        let t1 = TxnId(1);
        db.begin(t1).unwrap();
        let rid = db.insert(t1, t, museum(1, 7)).unwrap();
        db.commit(t1).unwrap();

        let t2 = TxnId(2);
        db.begin(t2).unwrap();
        db.update(t2, t, rid, 1, Value::Int(6)).unwrap();
        db.commit(t2).unwrap();

        // First crash tears t2's Commit record: t2 is rolled back.
        db.crash_with_torn_tail(10).unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(7));

        // New committed work after the first recovery...
        let t3 = TxnId(3);
        db.begin(t3).unwrap();
        db.update(t3, t, rid, 1, Value::Int(5)).unwrap();
        db.commit(t3).unwrap();

        // ...must survive a second crash+recovery (pre-fix this lost T3
        // or failed with WalCorrupt).
        db.simulate_crash_and_recover().unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(5));

        // And recovering once more changes nothing: recover twice ==
        // recover once.
        db.simulate_crash_and_recover().unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(5));
        assert_eq!(db.row_count(t).unwrap(), 1);
    }

    /// Double replay from the same image+log is a no-op: the full table
    /// contents are byte-identical between the first and second recovery.
    #[test]
    fn double_replay_equals_single_replay() {
        let (db, t) = setup();
        for i in 0..5i64 {
            let txn = TxnId(10 + i as u64);
            db.begin(txn).unwrap();
            db.insert(txn, t, museum(i, 10 * i)).unwrap();
            if i % 2 == 0 {
                db.commit(txn).unwrap();
            } else {
                db.abort(txn).unwrap();
            }
        }
        db.simulate_crash_and_recover().unwrap();
        let once: Vec<_> = db.scan(t).unwrap();
        db.simulate_crash_and_recover().unwrap();
        let twice: Vec<_> = db.scan(t).unwrap();
        assert_eq!(once, twice);
        assert_eq!(once.len(), 3, "only the committed inserts survive");
    }

    #[test]
    fn engine_usable_after_recovery() {
        let (db, t) = setup();
        let t1 = TxnId(1);
        db.begin(t1).unwrap();
        let rid = db.insert(t1, t, museum(1, 3)).unwrap();
        db.commit(t1).unwrap();
        db.simulate_crash_and_recover().unwrap();

        let t2 = TxnId(2);
        db.begin(t2).unwrap();
        db.update(t2, t, rid, 1, Value::Int(2)).unwrap();
        db.commit(t2).unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(2));
    }
}
