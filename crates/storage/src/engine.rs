//! The `Database` facade — the LDBS the middleware's Secure System
//! Transactions run against.
//!
//! The engine owns the catalog, one heap file + index set per table, and
//! the WAL. It enforces CHECK constraints on every write, logs
//! before/after images, supports abort-by-undo at runtime, quiescent
//! checkpoints, and crash recovery (see [`crate::recovery`]).
//!
//! Concurrency model: a coarse `parking_lot::RwLock` around the engine
//! state. The managers layered above (2PL, GTM) serialize conflicting
//! access themselves — the engine lock only protects physical integrity,
//! mirroring the paper's split where the middleware provides isolation and
//! the LDBS provides consistency + durability.

use crate::btree::BTreeIndex;
use crate::catalog::{Catalog, TableId};
use crate::constraint::Constraint;
use crate::heap::HeapFile;
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::wal::{LogRecord, Lsn, Wal};
use parking_lot::RwLock;
use pstm_obs::{Ctr, MetricsRegistry, TraceEvent, Tracer};
use pstm_types::{FaultDecision, FaultSite, PstmError, PstmResult, SharedFaultHook, TxnId, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// One write against the database, as carried by a [`WriteSet`].
#[derive(Clone, Debug, PartialEq)]
pub enum WriteOp {
    /// Insert a full row; the engine assigns the address.
    Insert {
        /// Target table.
        table: TableId,
        /// The new row.
        row: Row,
    },
    /// Overwrite one column of an existing row.
    Update {
        /// Target table.
        table: TableId,
        /// Target row.
        row_id: RowId,
        /// Column index.
        column: usize,
        /// New value.
        value: Value,
    },
    /// Delete a row.
    Delete {
        /// Target table.
        table: TableId,
        /// Target row.
        row_id: RowId,
    },
}

/// An ordered batch of writes applied as one atomic short transaction —
/// exactly what the paper's Secure System Transaction is.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WriteSet(pub Vec<WriteOp>);

impl WriteSet {
    /// An empty write set.
    #[must_use]
    pub fn new() -> Self {
        WriteSet::default()
    }

    /// Appends an op; builder-style.
    #[must_use]
    pub fn with(mut self, op: WriteOp) -> Self {
        self.0.push(op);
        self
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Physical storage of one table.
pub(crate) struct TableStore {
    pub(crate) heap: HeapFile,
    pub(crate) indexes: Vec<BTreeIndex>,
}

impl TableStore {
    fn new(index_count: usize) -> Self {
        TableStore {
            heap: HeapFile::new(),
            indexes: (0..index_count).map(|_| BTreeIndex::new()).collect(),
        }
    }
}

/// Checkpoint image: serialized catalog + heap images.
pub(crate) struct CheckpointImage {
    pub(crate) catalog_json: Vec<u8>,
    pub(crate) heaps: Vec<Vec<u8>>,
}

pub(crate) struct Inner {
    pub(crate) catalog: Catalog,
    pub(crate) stores: Vec<TableStore>,
    pub(crate) wal: Wal,
    pub(crate) checkpoint: Option<CheckpointImage>,
    /// Active transactions and the LSN of their Begin record (undo scans
    /// the log from there).
    active: HashMap<TxnId, Lsn>,
    /// Rows each active transaction has logically deleted; physically
    /// purged at commit, undeleted at abort — so the space of an
    /// uncommitted delete can never be stolen by other inserts.
    pending_deletes: HashMap<TxnId, Vec<(TableId, RowId)>>,
}

/// Cumulative engine statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rows inserted since creation.
    pub inserts: u64,
    /// Column updates since creation.
    pub updates: u64,
    /// Rows deleted since creation.
    pub deletes: u64,
    /// Engine-level transaction commits.
    pub commits: u64,
    /// Engine-level transaction aborts.
    pub aborts: u64,
    /// Bytes currently in the WAL.
    pub wal_bytes: usize,
}

impl EngineStats {
    /// Projects the engine counters out of an obs registry. `wal_bytes`
    /// is live state, not a counter — [`Database::stats`] overlays it
    /// from the log itself.
    #[must_use]
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        EngineStats {
            inserts: reg.counter(Ctr::EngineInserts),
            updates: reg.counter(Ctr::EngineUpdates),
            deletes: reg.counter(Ctr::EngineDeletes),
            commits: reg.counter(Ctr::EngineCommits),
            aborts: reg.counter(Ctr::EngineAborts),
            wal_bytes: 0,
        }
    }
}

/// The embedded database engine.
///
/// # Example
///
/// ```
/// use pstm_storage::{ColumnDef, Constraint, Database, Row, TableSchema};
/// use pstm_types::{TxnId, Value, ValueKind};
///
/// let db = Database::new();
/// let schema = TableSchema::new(
///     "Flight",
///     vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("free", ValueKind::Int)],
/// )?;
/// let t = db.create_table(schema, vec![Constraint::non_negative("free >= 0", 1)])?;
///
/// let txn = TxnId(1);
/// db.begin(txn)?;
/// let row = db.insert(txn, t, Row::new(vec![Value::Int(1), Value::Int(100)]))?;
/// db.update(txn, t, row, 1, Value::Int(99))?;
/// db.commit(txn)?;
/// assert_eq!(db.get_col(t, row, 1)?, Value::Int(99));
///
/// // The CHECK constraint is enforced on every write:
/// db.begin(TxnId(2))?;
/// assert!(db.update(TxnId(2), t, row, 1, Value::Int(-1)).is_err());
/// # Ok::<(), pstm_types::PstmError>(())
/// ```
pub struct Database {
    inner: RwLock<Inner>,
    tracer: RwLock<Tracer>,
    /// Pending injected faults for `apply_write_set` (testing/chaos: the
    /// paper's §VII asks what happens when an SST fails; this is how the
    /// middleware's retry/abort path is exercised).
    injected_faults: RwLock<u32>,
    /// Modeled round-trip to the LDBS device, paid once per
    /// [`Database::apply_write_set`] call — the cost an SST flush ships
    /// over the mobile link in the paper's deployment, and the cost the
    /// group-commit station amortizes (N fused commits pay it once).
    /// Zero by default: functional tests and chaos runs are unaffected.
    apply_latency: RwLock<std::time::Duration>,
    /// Seeded fault seam (see `pstm_types::fault`), consulted at
    /// [`FaultSite::SstApply`] here and at [`FaultSite::WalAppend`] inside
    /// the WAL. `None` outside chaos runs.
    fault_hook: RwLock<Option<SharedFaultHook>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Database {
            inner: RwLock::new(Inner {
                catalog: Catalog::new(),
                stores: Vec::new(),
                wal: Wal::new(),
                checkpoint: None,
                active: HashMap::new(),
                pending_deletes: HashMap::new(),
            }),
            tracer: RwLock::new(Tracer::disabled()),
            injected_faults: RwLock::new(0),
            apply_latency: RwLock::new(std::time::Duration::ZERO),
            fault_hook: RwLock::new(None),
        }
    }

    /// Sets the modeled per-flush LDBS round-trip charged by
    /// [`Database::apply_write_set`]. Benchmarks use it to measure how
    /// batching amortizes the device cost; leave at zero elsewhere.
    pub fn set_apply_latency(&self, latency: std::time::Duration) {
        *self.apply_latency.write() = latency;
    }

    /// Routes engine and WAL events to `tracer`. The shared-`Arc` pattern
    /// above (managers hold `Arc<Database>`) makes this `&self`.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.write().wal.set_tracer(tracer.clone());
        *self.tracer.write() = tracer;
    }

    /// Makes the next `n` calls to [`Database::apply_write_set`] fail with
    /// a transient I/O error before touching any state. Chaos hook for
    /// exercising SST-failure recovery.
    pub fn inject_write_set_faults(&self, n: u32) {
        *self.injected_faults.write() += n;
    }

    /// Installs a seeded fault hook on the engine's labeled seams: every
    /// WAL append (the one sanctioned durable-write path) and the entry
    /// of [`Database::apply_write_set`]. Share the same hook with the
    /// managers above so one fault plan counts site arrivals across the
    /// whole stack.
    pub fn set_fault_hook(&self, hook: SharedFaultHook) {
        self.inner.write().wal.set_fault_hook(Some(hook.clone()));
        *self.fault_hook.write() = Some(hook);
    }

    /// Removes the fault hook (bootstrap and teardown phases of a chaos
    /// run must not be faulted).
    pub fn clear_fault_hook(&self) {
        self.inner.write().wal.set_fault_hook(None);
        *self.fault_hook.write() = None;
    }

    /// Creates a table with its constraints. DDL is autocommitted and
    /// WAL-logged, so it survives a crash even without a checkpoint.
    pub fn create_table(
        &self,
        schema: TableSchema,
        constraints: Vec<Constraint>,
    ) -> PstmResult<TableId> {
        let mut inner = self.inner.write();
        let id = inner.catalog.create_table(schema.clone(), constraints.clone())?;
        inner.stores.push(TableStore::new(0));
        inner.wal.append(&LogRecord::CreateTable { schema, constraints })?;
        Ok(id)
    }

    /// Creates a secondary index, backfilling it from existing rows.
    /// Autocommitted and WAL-logged like [`Database::create_table`].
    pub fn create_index(&self, table: TableId, column: usize) -> PstmResult<()> {
        let mut inner = self.inner.write();
        inner.catalog.create_index(table, column)?;
        inner.wal.append(&LogRecord::CreateIndex { table, column })?;
        let store = &mut inner.stores[table.0 as usize];
        let mut idx = BTreeIndex::new();
        for (rid, row) in store.heap.scan() {
            if let Some(v) = row.get(column) {
                idx.insert(v.clone(), rid);
            }
        }
        store.indexes.push(idx);
        Ok(())
    }

    /// Resolves a table name.
    pub fn table_id(&self, name: &str) -> PstmResult<TableId> {
        self.inner.read().catalog.table_id(name)
    }

    /// Resolves a column name within a table.
    pub fn column_index(&self, table: TableId, column: &str) -> PstmResult<usize> {
        self.inner.read().catalog.meta(table)?.schema.column_index(column)
    }

    /// Starts an engine-level transaction.
    pub fn begin(&self, txn: TxnId) -> PstmResult<()> {
        let mut inner = self.inner.write();
        if inner.active.contains_key(&txn) {
            return Err(PstmError::InvalidState { txn, action: "begin", state: "active" });
        }
        let lsn = inner.wal.append(&LogRecord::Begin { txn })?;
        inner.active.insert(txn, lsn);
        Ok(())
    }

    /// Commits an engine-level transaction. Logically-deleted rows are
    /// physically purged now — only at commit does their space become
    /// reusable.
    pub fn commit(&self, txn: TxnId) -> PstmResult<()> {
        let mut inner = self.inner.write();
        if inner.active.remove(&txn).is_none() {
            return Err(PstmError::UnknownTxn(txn));
        }
        for (table, row_id) in inner.pending_deletes.remove(&txn).unwrap_or_default() {
            inner.stores[table.0 as usize].heap.purge(row_id)?;
        }
        inner.wal.append(&LogRecord::Commit { txn })?;
        self.tracer.read().emit_unclocked(TraceEvent::EngineCommit { txn });
        Ok(())
    }

    /// Aborts an engine-level transaction, undoing its writes from the
    /// WAL's before-images (in reverse order).
    pub fn abort(&self, txn: TxnId) -> PstmResult<()> {
        let mut inner = self.inner.write();
        let begin = inner.active.remove(&txn).ok_or(PstmError::UnknownTxn(txn))?;
        let records = inner.wal.records_from(begin)?;
        for (_, rec) in records.iter().rev() {
            if rec.txn() != Some(txn) {
                continue;
            }
            match rec {
                LogRecord::Insert { table, row_id, row, .. } => {
                    let store = &mut inner.stores[table.0 as usize];
                    store.heap.delete(*row_id)?;
                    let meta_indexes: Vec<usize> = {
                        // indexes defined for this table, by column
                        inner.catalog.meta(*table)?.indexes.iter().map(|d| d.column).collect()
                    };
                    let store = &mut inner.stores[table.0 as usize];
                    for (i, col) in meta_indexes.iter().enumerate() {
                        if let Some(v) = row.get(*col) {
                            store.indexes[i].remove(v, *row_id);
                        }
                    }
                }
                LogRecord::Update { table, row_id, column, before, after, .. } => {
                    let mut row = inner.stores[table.0 as usize].heap.get(*row_id)?;
                    row.set(*column, before.clone());
                    inner.stores[table.0 as usize].heap.update(*row_id, &row)?;
                    let idx_pos = inner
                        .catalog
                        .meta(*table)?
                        .indexes
                        .iter()
                        .position(|d| d.column == *column);
                    if let Some(i) = idx_pos {
                        let store = &mut inner.stores[table.0 as usize];
                        store.indexes[i].remove(after, *row_id);
                        store.indexes[i].insert(before.clone(), *row_id);
                    }
                }
                LogRecord::Delete { table, row_id, row, .. } => {
                    // The delete was only a logical mark; the bytes and
                    // slot are still reserved.
                    inner.stores[table.0 as usize].heap.undelete(*row_id)?;
                    let cols: Vec<usize> =
                        inner.catalog.meta(*table)?.indexes.iter().map(|d| d.column).collect();
                    let store = &mut inner.stores[table.0 as usize];
                    for (i, col) in cols.iter().enumerate() {
                        if let Some(v) = row.get(*col) {
                            store.indexes[i].insert(v.clone(), *row_id);
                        }
                    }
                }
                _ => {}
            }
        }
        inner.pending_deletes.remove(&txn);
        inner.wal.append(&LogRecord::Abort { txn })?;
        self.tracer.read().emit_unclocked(TraceEvent::EngineAbort { txn });
        Ok(())
    }

    fn require_active(inner: &Inner, txn: TxnId) -> PstmResult<()> {
        if inner.active.contains_key(&txn) {
            Ok(())
        } else {
            Err(PstmError::UnknownTxn(txn))
        }
    }

    /// Inserts a row under an active transaction.
    pub fn insert(&self, txn: TxnId, table: TableId, row: Row) -> PstmResult<RowId> {
        let mut inner = self.inner.write();
        Self::require_active(&inner, txn)?;
        let meta = inner.catalog.meta(table)?;
        meta.schema.validate_row(row.values())?;
        for c in &meta.constraints {
            c.check_row(row.values())?;
        }
        let index_cols: Vec<usize> = meta.indexes.iter().map(|d| d.column).collect();
        let store = &mut inner.stores[table.0 as usize];
        let rid = store.heap.insert(&row)?;
        for (i, col) in index_cols.iter().enumerate() {
            if let Some(v) = row.get(*col) {
                store.indexes[i].insert(v.clone(), rid);
            }
        }
        inner.wal.append(&LogRecord::Insert { txn, table, row_id: rid, row })?;
        self.tracer.read().emit_unclocked(TraceEvent::EngineInsert { txn });
        Ok(rid)
    }

    /// Updates one column of a row under an active transaction.
    pub fn update(
        &self,
        txn: TxnId,
        table: TableId,
        row_id: RowId,
        column: usize,
        value: Value,
    ) -> PstmResult<()> {
        let mut inner = self.inner.write();
        Self::require_active(&inner, txn)?;
        let meta = inner.catalog.meta(table)?;
        meta.schema.validate_column(column, &value)?;
        for c in &meta.constraints {
            if c.column == column {
                c.check_value(&value)?;
            }
        }
        let idx_pos = meta.indexes.iter().position(|d| d.column == column);
        let store = &mut inner.stores[table.0 as usize];
        let mut row = store.heap.get(row_id)?;
        let before = row
            .get(column)
            .cloned()
            .ok_or_else(|| PstmError::NotFound(format!("column #{column} in {table}")))?;
        row.set(column, value.clone());
        store.heap.update(row_id, &row)?;
        if let Some(i) = idx_pos {
            store.indexes[i].remove(&before, row_id);
            store.indexes[i].insert(value.clone(), row_id);
        }
        inner.wal.append(&LogRecord::Update {
            txn,
            table,
            row_id,
            column,
            before,
            after: value,
        })?;
        self.tracer.read().emit_unclocked(TraceEvent::EngineUpdate { txn });
        Ok(())
    }

    /// Deletes a row under an active transaction.
    pub fn delete(&self, txn: TxnId, table: TableId, row_id: RowId) -> PstmResult<()> {
        let mut inner = self.inner.write();
        Self::require_active(&inner, txn)?;
        let index_cols: Vec<usize> =
            inner.catalog.meta(table)?.indexes.iter().map(|d| d.column).collect();
        let store = &mut inner.stores[table.0 as usize];
        let row = store.heap.get(row_id)?;
        // Deferred physical delete: mark now (readers no longer see the
        // row, but its space stays reserved), purge at commit, undelete
        // at abort.
        store.heap.mark_deleted(row_id)?;
        for (i, col) in index_cols.iter().enumerate() {
            if let Some(v) = row.get(*col) {
                store.indexes[i].remove(v, row_id);
            }
        }
        inner.pending_deletes.entry(txn).or_default().push((table, row_id));
        inner.wal.append(&LogRecord::Delete { txn, table, row_id, row })?;
        self.tracer.read().emit_unclocked(TraceEvent::EngineDelete { txn });
        Ok(())
    }

    /// Reads a full row (no transaction required: isolation is the
    /// managers' responsibility).
    pub fn get(&self, table: TableId, row_id: RowId) -> PstmResult<Row> {
        let inner = self.inner.read();
        inner
            .stores
            .get(table.0 as usize)
            .ok_or_else(|| PstmError::NotFound(format!("table {table}")))?
            .heap
            .get(row_id)
    }

    /// Reads one column of a row.
    pub fn get_col(&self, table: TableId, row_id: RowId, column: usize) -> PstmResult<Value> {
        let row = self.get(table, row_id)?;
        row.get(column)
            .cloned()
            .ok_or_else(|| PstmError::NotFound(format!("column #{column} in {table}")))
    }

    /// Full scan of a table.
    pub fn scan(&self, table: TableId) -> PstmResult<Vec<(RowId, Row)>> {
        let inner = self.inner.read();
        Ok(inner
            .stores
            .get(table.0 as usize)
            .ok_or_else(|| PstmError::NotFound(format!("table {table}")))?
            .heap
            .scan()
            .collect())
    }

    /// Point lookup by column value, via index when one exists, else scan.
    pub fn lookup_eq(
        &self,
        table: TableId,
        column: usize,
        value: &Value,
    ) -> PstmResult<Vec<RowId>> {
        let inner = self.inner.read();
        let meta = inner.catalog.meta(table)?;
        let store = &inner.stores[table.0 as usize];
        if let Some(i) = meta.indexes.iter().position(|d| d.column == column) {
            return Ok(store.indexes[i].get(value).to_vec());
        }
        Ok(store
            .heap
            .scan()
            .filter(|(_, row)| row.get(column) == Some(value))
            .map(|(rid, _)| rid)
            .collect())
    }

    /// Range lookup by column value via index when one exists, else scan.
    pub fn lookup_range(
        &self,
        table: TableId,
        column: usize,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> PstmResult<Vec<RowId>> {
        let inner = self.inner.read();
        let meta = inner.catalog.meta(table)?;
        let store = &inner.stores[table.0 as usize];
        if let Some(i) = meta.indexes.iter().position(|d| d.column == column) {
            return Ok(store.indexes[i].range(lo, hi).into_iter().map(|(_, r)| r).collect());
        }
        Ok(store
            .heap
            .scan()
            .filter(|(_, row)| {
                row.get(column).is_some_and(|v| crate::btree::value_in_bounds(v, lo, hi))
            })
            .map(|(rid, _)| rid)
            .collect())
    }

    /// Applies a write set as one atomic short transaction — the engine
    /// side of a Secure System Transaction. All-or-nothing: any failure
    /// (constraint violation included) rolls back every op already
    /// applied. Returns the addresses assigned to inserts, in op order.
    // pstm-lockgraph: flush-point
    pub fn apply_write_set(&self, txn: TxnId, ws: &WriteSet) -> PstmResult<Vec<RowId>> {
        // WAL appends nested under the per-op engine calls carve their
        // own WalAppend time out of this phase (exclusive accounting).
        let _phase = pstm_obs::prof::PhaseTimer::start(pstm_obs::prof::CommitPhase::SstApply);
        // The modeled device round-trip is paid before the engine locks
        // anything: flushes to different shards' rows overlap, but one
        // flush pays the trip whether it carries 1 commit or a fused 32.
        let device = *self.apply_latency.read();
        if device > std::time::Duration::ZERO {
            std::thread::sleep(device);
        }
        {
            let mut faults = self.injected_faults.write();
            if *faults > 0 {
                *faults -= 1;
                return Err(PstmError::Io("injected write-set fault".into()));
            }
        }
        if let Some(hook) = self.fault_hook.read().clone() {
            match hook.decide(FaultSite::SstApply) {
                FaultDecision::Proceed => {}
                FaultDecision::Io => {
                    // Transient device error before any state is touched:
                    // the middleware's SST retry/abort machinery owns it.
                    self.tracer.read().emit_unclocked(TraceEvent::FaultInjected {
                        site: FaultSite::SstApply.label(),
                        action: "io".into(),
                    });
                    return Err(PstmError::Io("injected SST fault".into()));
                }
                FaultDecision::Crash | FaultDecision::Torn { .. } => {
                    self.tracer.read().emit_unclocked(TraceEvent::FaultInjected {
                        site: FaultSite::SstApply.label(),
                        action: "crash".into(),
                    });
                    return Err(PstmError::Crashed(FaultSite::SstApply.label()));
                }
            }
        }
        // The dominant SST shape — all single-column updates — takes the
        // batched fast path: one lock acquisition and one framed WAL
        // flush for the whole transaction instead of one per op.
        if ws.0.iter().all(|op| matches!(op, WriteOp::Update { .. })) {
            self.apply_updates_batched(txn, ws)?;
            return Ok(Vec::new());
        }
        self.begin(txn)?;
        let mut inserted = Vec::new();
        for op in &ws.0 {
            let result = match op {
                WriteOp::Insert { table, row } => {
                    self.insert(txn, *table, row.clone()).map(|rid| inserted.push(rid))
                }
                WriteOp::Update { table, row_id, column, value } => {
                    self.update(txn, *table, *row_id, *column, value.clone())
                }
                WriteOp::Delete { table, row_id } => self.delete(txn, *table, *row_id),
            };
            if let Err(e) = result {
                self.abort(txn)?;
                return Err(e);
            }
        }
        self.commit(txn)?;
        Ok(inserted)
    }

    /// All-`Update` write sets commit under a single `inner` lock: every
    /// op is validated first (schema, constraints, before-images — no
    /// state touched, so a violation leaves no WAL or heap trace), then
    /// `Begin`+`Update`s+`Commit` land as one [`Wal::append_batch`] flush,
    /// and only then does the heap mutate — mutations past validation
    /// cannot fail. A crash inside the batched flush therefore leaves the
    /// heap untouched and no `Commit` record for recovery to redo.
    fn apply_updates_batched(&self, txn: TxnId, ws: &WriteSet) -> PstmResult<()> {
        let mut guard = self.inner.write();
        let inner = &mut *guard;
        if inner.active.contains_key(&txn) {
            return Err(PstmError::InvalidState { txn, action: "begin", state: "active" });
        }
        let mut recs = Vec::with_capacity(ws.0.len() + 2);
        recs.push(LogRecord::Begin { txn });
        // (table, row_id, column, after, before, index slot)
        let mut plan: Vec<(TableId, RowId, usize, Value, Value, Option<usize>)> =
            Vec::with_capacity(ws.0.len());
        for op in &ws.0 {
            let WriteOp::Update { table, row_id, column, value } = op else {
                return Err(PstmError::internal("batched path requires all-Update sets"));
            };
            let meta = inner.catalog.meta(*table)?;
            meta.schema.validate_column(*column, value)?;
            for c in &meta.constraints {
                if c.column == *column {
                    c.check_value(value)?;
                }
            }
            let idx_pos = meta.indexes.iter().position(|d| d.column == *column);
            let row = inner.stores[table.0 as usize].heap.get(*row_id)?;
            let mut before = row
                .get(*column)
                .cloned()
                .ok_or_else(|| PstmError::NotFound(format!("column #{column} in {table}")))?;
            // Chain before-images through earlier ops of this batch, as
            // sequential application would.
            for (t, r, c, after, ..) in &plan {
                if t == table && r == row_id && c == column {
                    before = after.clone();
                }
            }
            recs.push(LogRecord::Update {
                txn,
                table: *table,
                row_id: *row_id,
                column: *column,
                before: before.clone(),
                after: value.clone(),
            });
            plan.push((*table, *row_id, *column, value.clone(), before, idx_pos));
        }
        recs.push(LogRecord::Commit { txn });
        inner.wal.append_batch(&recs)?;
        for (table, row_id, column, value, before, idx_pos) in plan {
            let store = &mut inner.stores[table.0 as usize];
            let mut row = store.heap.get(row_id)?;
            row.set(column, value.clone());
            store.heap.update(row_id, &row)?;
            if let Some(i) = idx_pos {
                store.indexes[i].remove(&before, row_id);
                store.indexes[i].insert(value, row_id);
            }
        }
        let tracer = self.tracer.read();
        for _ in &ws.0 {
            tracer.emit_unclocked(TraceEvent::EngineUpdate { txn });
        }
        tracer.emit_unclocked(TraceEvent::EngineCommit { txn });
        Ok(())
    }

    /// Quiescent checkpoint: captures heap images and truncates the WAL.
    /// Fails if any transaction is active (the image must contain only
    /// committed data for redo-only recovery to be correct).
    pub fn checkpoint(&self) -> PstmResult<()> {
        let mut inner = self.inner.write();
        if !inner.active.is_empty() {
            return Err(PstmError::internal(format!(
                "checkpoint with {} active transactions",
                inner.active.len()
            )));
        }
        let catalog_json = serde_json::to_vec(&inner.catalog)
            .map_err(|e| PstmError::internal(format!("catalog serialize: {e}")))?;
        let heaps = inner.stores.iter().map(|s| s.heap.to_bytes()).collect();
        inner.checkpoint = Some(CheckpointImage { catalog_json, heaps });
        let cp = inner.wal.append(&LogRecord::Checkpoint)?;
        inner.wal.truncate_prefix(cp)?;
        Ok(())
    }

    /// Simulates a crash (all volatile state lost) followed by recovery
    /// from the checkpoint image + WAL. Active transactions disappear;
    /// their effects are rolled back by virtue of redo-only replay of
    /// committed work.
    pub fn simulate_crash_and_recover(&self) -> PstmResult<()> {
        self.crash_with_torn_tail(0)
    }

    /// Crash simulation that additionally tears the last `torn_bytes`
    /// bytes off the WAL before recovering, emulating a write cut short
    /// by power loss.
    pub fn crash_with_torn_tail(&self, torn_bytes: usize) -> PstmResult<()> {
        let mut inner = self.inner.write();
        inner.active.clear();
        inner.pending_deletes.clear();
        if torn_bytes > 0 {
            inner.wal.crash_truncate(torn_bytes);
        }
        // Physically discard any torn tail (from the truncation above or a
        // torn-page fault injected mid-append) BEFORE recovering. Redo
        // skips the tear either way, but without the trim, post-recovery
        // appends would land behind the garbage and a second recovery
        // would stop at the tear and lose them — recovery must be
        // idempotent under double replay.
        inner.wal.trim_torn_tail();
        let (catalog, stores, stats) = crate::recovery::recover(&inner.checkpoint, &inner.wal)?;
        inner.catalog = catalog;
        inner.stores = stores;
        self.tracer.read().emit_unclocked(TraceEvent::Recovered {
            winners: stats.winners,
            records: stats.records,
        });
        Ok(())
    }

    /// Persists the database to a single file: takes a quiescent
    /// checkpoint (fails if transactions are active) and writes the
    /// catalog + heap images atomically.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> PstmResult<()> {
        self.checkpoint()?;
        let inner = self.inner.read();
        let cp = inner.checkpoint.as_ref().expect("checkpoint() just installed an image");
        let bytes = crate::persist::encode(&cp.catalog_json, &cp.heaps);
        crate::persist::write_atomic(path.as_ref(), &bytes)
    }

    /// Opens a database previously written by [`Database::save_to`]. The
    /// image is validated (magic, per-section checksums) and loaded
    /// through the same path crash recovery uses; indexes are rebuilt.
    pub fn open_from(path: impl AsRef<std::path::Path>) -> PstmResult<Self> {
        let bytes = crate::persist::read_all(path.as_ref())?;
        let (catalog_json, heaps) = crate::persist::decode(&bytes)?;
        let checkpoint = Some(CheckpointImage { catalog_json, heaps });
        let wal = Wal::new();
        let (catalog, stores, _stats) = crate::recovery::recover(&checkpoint, &wal)?;
        Ok(Database {
            inner: RwLock::new(Inner {
                catalog,
                stores,
                wal,
                checkpoint,
                active: HashMap::new(),
                pending_deletes: HashMap::new(),
            }),
            tracer: RwLock::new(Tracer::disabled()),
            injected_faults: RwLock::new(0),
            apply_latency: RwLock::new(std::time::Duration::ZERO),
            fault_hook: RwLock::new(None),
        })
    }

    /// Snapshot of the engine counters, projected from the obs registry
    /// with the live WAL size overlaid.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut s = self.tracer.read().with_registry(EngineStats::from_registry);
        s.wal_bytes = self.inner.read().wal.len_bytes();
        s
    }

    /// Number of live rows in `table`.
    pub fn row_count(&self, table: TableId) -> PstmResult<usize> {
        let inner = self.inner.read();
        Ok(inner
            .stores
            .get(table.0 as usize)
            .ok_or_else(|| PstmError::NotFound(format!("table {table}")))?
            .heap
            .row_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use pstm_types::ValueKind;

    fn setup() -> (Database, TableId) {
        let db = Database::new();
        let schema = TableSchema::new(
            "Flight",
            vec![
                ColumnDef::new("id", ValueKind::Int),
                ColumnDef::new("free_tickets", ValueKind::Int),
                ColumnDef::new("price", ValueKind::Float),
            ],
        )
        .unwrap();
        let t = db
            .create_table(schema, vec![Constraint::non_negative("free_tickets >= 0", 1)])
            .unwrap();
        (db, t)
    }

    fn flight(id: i64, free: i64, price: f64) -> Row {
        Row::new(vec![Value::Int(id), Value::Int(free), Value::Float(price)])
    }

    #[test]
    fn crud_round_trip() {
        let (db, t) = setup();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        let rid = db.insert(txn, t, flight(1, 100, 59.9)).unwrap();
        db.update(txn, t, rid, 1, Value::Int(99)).unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(99));
        assert_eq!(db.row_count(t).unwrap(), 1);
    }

    #[test]
    fn constraint_rejected_on_insert_and_update() {
        let (db, t) = setup();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        assert!(matches!(
            db.insert(txn, t, flight(1, -5, 1.0)).unwrap_err(),
            PstmError::ConstraintViolation { .. }
        ));
        let rid = db.insert(txn, t, flight(1, 0, 1.0)).unwrap();
        assert!(db.update(txn, t, rid, 1, Value::Int(-1)).is_err());
        db.commit(txn).unwrap();
        assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(0));
    }

    #[test]
    fn abort_undoes_everything_in_reverse() {
        let (db, t) = setup();
        let setup_txn = TxnId(1);
        db.begin(setup_txn).unwrap();
        let keep = db.insert(setup_txn, t, flight(1, 10, 1.0)).unwrap();
        db.commit(setup_txn).unwrap();

        let txn = TxnId(2);
        db.begin(txn).unwrap();
        let new_rid = db.insert(txn, t, flight(2, 20, 2.0)).unwrap();
        db.update(txn, t, keep, 1, Value::Int(5)).unwrap();
        db.update(txn, t, keep, 1, Value::Int(3)).unwrap();
        db.delete(txn, t, keep).unwrap();
        db.abort(txn).unwrap();

        assert!(db.get(t, new_rid).is_err(), "inserted row rolled back");
        assert_eq!(db.get_col(t, keep, 1).unwrap(), Value::Int(10), "updates + delete undone");
        assert_eq!(db.row_count(t).unwrap(), 1);
    }

    #[test]
    fn write_set_is_atomic_under_constraint_failure() {
        let (db, t) = setup();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        let rid = db.insert(txn, t, flight(1, 1, 1.0)).unwrap();
        db.commit(txn).unwrap();

        // Second update violates free_tickets >= 0 — the first must also
        // roll back.
        let ws = WriteSet::new()
            .with(WriteOp::Update { table: t, row_id: rid, column: 2, value: Value::Float(9.0) })
            .with(WriteOp::Update { table: t, row_id: rid, column: 1, value: Value::Int(-1) });
        let err = db.apply_write_set(TxnId(2), &ws).unwrap_err();
        assert!(matches!(err, PstmError::ConstraintViolation { .. }));
        assert_eq!(db.get_col(t, rid, 2).unwrap(), Value::Float(1.0));
        // The batched all-Update path validates the whole set before
        // touching the WAL or heap: the rejection happens before any
        // engine transaction begins, so there is no abort to count and
        // no undo trail in the log.
        let stats = db.stats();
        assert_eq!(stats.aborts, 0);
    }

    #[test]
    fn indexes_serve_lookups_and_stay_consistent() {
        let (db, t) = setup();
        db.create_index(t, 1).unwrap();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        let r1 = db.insert(txn, t, flight(1, 7, 1.0)).unwrap();
        let r2 = db.insert(txn, t, flight(2, 7, 2.0)).unwrap();
        let r3 = db.insert(txn, t, flight(3, 9, 3.0)).unwrap();
        db.commit(txn).unwrap();

        let mut hits = db.lookup_eq(t, 1, &Value::Int(7)).unwrap();
        hits.sort();
        assert_eq!(hits, vec![r1, r2]);

        let txn2 = TxnId(2);
        db.begin(txn2).unwrap();
        db.update(txn2, t, r1, 1, Value::Int(9)).unwrap();
        db.delete(txn2, t, r3).unwrap();
        db.commit(txn2).unwrap();

        assert_eq!(db.lookup_eq(t, 1, &Value::Int(7)).unwrap(), vec![r2]);
        assert_eq!(db.lookup_eq(t, 1, &Value::Int(9)).unwrap(), vec![r1]);

        let range =
            db.lookup_range(t, 1, Bound::Included(&Value::Int(8)), Bound::Unbounded).unwrap();
        assert_eq!(range, vec![r1]);
    }

    #[test]
    fn index_backfills_existing_rows() {
        let (db, t) = setup();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        let rid = db.insert(txn, t, flight(1, 42, 1.0)).unwrap();
        db.commit(txn).unwrap();
        db.create_index(t, 1).unwrap();
        assert_eq!(db.lookup_eq(t, 1, &Value::Int(42)).unwrap(), vec![rid]);
    }

    #[test]
    fn lookup_without_index_scans() {
        let (db, t) = setup();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        let rid = db.insert(txn, t, flight(1, 11, 1.0)).unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.lookup_eq(t, 1, &Value::Int(11)).unwrap(), vec![rid]);
        let range = db
            .lookup_range(t, 1, Bound::Excluded(&Value::Int(10)), Bound::Excluded(&Value::Int(12)))
            .unwrap();
        assert_eq!(range, vec![rid]);
    }

    #[test]
    fn writes_require_active_transaction() {
        let (db, t) = setup();
        assert!(matches!(
            db.insert(TxnId(9), t, flight(1, 1, 1.0)).unwrap_err(),
            PstmError::UnknownTxn(_)
        ));
        assert!(db.commit(TxnId(9)).is_err());
        assert!(db.abort(TxnId(9)).is_err());
    }

    #[test]
    fn double_begin_rejected() {
        let (db, _) = setup();
        db.begin(TxnId(1)).unwrap();
        assert!(matches!(db.begin(TxnId(1)).unwrap_err(), PstmError::InvalidState { .. }));
    }

    #[test]
    fn checkpoint_requires_quiescence() {
        let (db, _) = setup();
        db.begin(TxnId(1)).unwrap();
        assert!(db.checkpoint().is_err());
        db.commit(TxnId(1)).unwrap();
        db.checkpoint().unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let (db, t) = setup();
        let txn = TxnId(1);
        db.begin(txn).unwrap();
        let rid = db.insert(txn, t, flight(1, 5, 1.0)).unwrap();
        db.update(txn, t, rid, 1, Value::Int(4)).unwrap();
        db.commit(txn).unwrap();
        let s = db.stats();
        assert_eq!((s.inserts, s.updates, s.commits), (1, 1, 1));
        assert!(s.wal_bytes > 0);
    }
}
