//! Binding of middleware resources to physical storage locations.
//!
//! The managers (2PL baseline and GTM) schedule in terms of
//! [`ResourceId`]s — abstract object data members. The binding registry
//! maps each one to a `(table, row, column)` triple in the engine, so a
//! granted operation knows where to read and an SST knows where to write.

use crate::catalog::TableId;
use crate::row::RowId;
use pstm_types::{MemberId, ObjectId, PstmError, PstmResult, ResourceId};
use std::collections::BTreeMap;

/// Physical location of one object data member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Binding {
    /// Table holding the object's row.
    pub table: TableId,
    /// The object's row.
    pub row: RowId,
    /// Column backing the data member.
    pub column: usize,
}

/// Registry of resource → storage bindings.
#[derive(Clone, Debug, Default)]
pub struct BindingRegistry {
    map: BTreeMap<ResourceId, Binding>,
    next_object: u32,
}

impl BindingRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        BindingRegistry::default()
    }

    /// Registers a binding for an explicit resource id.
    pub fn bind(&mut self, resource: ResourceId, binding: Binding) -> PstmResult<()> {
        if self.map.contains_key(&resource) {
            return Err(PstmError::AlreadyExists(format!("binding for {resource}")));
        }
        self.next_object = self.next_object.max(resource.object.0 + 1);
        self.map.insert(resource, binding);
        Ok(())
    }

    /// Allocates a fresh object id and binds its members to consecutive
    /// columns of `row`, starting at `first_column`. Returns the new
    /// object id.
    pub fn bind_object(
        &mut self,
        table: TableId,
        row: RowId,
        members: &[(MemberId, usize)],
    ) -> PstmResult<ObjectId> {
        let object = ObjectId(self.next_object);
        self.next_object += 1;
        for (member, column) in members {
            let resource = ResourceId::new(object, *member);
            self.map.insert(resource, Binding { table, row, column: *column });
        }
        Ok(object)
    }

    /// Looks up the binding for `resource`.
    pub fn resolve(&self, resource: ResourceId) -> PstmResult<Binding> {
        self.map
            .get(&resource)
            .copied()
            .ok_or_else(|| PstmError::NotFound(format!("binding for {resource}")))
    }

    /// All bound resources, in id order.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.map.keys().copied()
    }

    /// Number of bound resources.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_object_allocates_sequential_ids() {
        let mut reg = BindingRegistry::new();
        let t = TableId(0);
        let o1 =
            reg.bind_object(t, RowId::new(0, 0), &[(MemberId(0), 1), (MemberId(1), 2)]).unwrap();
        let o2 = reg.bind_object(t, RowId::new(0, 1), &[(MemberId(0), 1)]).unwrap();
        assert_eq!(o1, ObjectId(0));
        assert_eq!(o2, ObjectId(1));
        assert_eq!(reg.len(), 3);

        let b = reg.resolve(ResourceId::new(o1, MemberId(1))).unwrap();
        assert_eq!(b.column, 2);
        assert_eq!(b.row, RowId::new(0, 0));
    }

    #[test]
    fn explicit_bind_conflicts_detected() {
        let mut reg = BindingRegistry::new();
        let r = ResourceId::atomic(ObjectId(5));
        let b = Binding { table: TableId(0), row: RowId::new(0, 0), column: 0 };
        reg.bind(r, b).unwrap();
        assert!(matches!(reg.bind(r, b).unwrap_err(), PstmError::AlreadyExists(_)));
        // Fresh allocations skip past explicitly-used ids.
        let o = reg.bind_object(TableId(0), RowId::new(0, 1), &[(MemberId(0), 0)]).unwrap();
        assert!(o.0 > 5);
    }

    #[test]
    fn unresolved_binding_errors() {
        let reg = BindingRegistry::new();
        assert!(reg.resolve(ResourceId::atomic(ObjectId(0))).is_err());
        assert!(reg.is_empty());
    }
}
