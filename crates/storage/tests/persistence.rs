//! Round-trip persistence of the engine through the public API.

use pstm_storage::{ColumnDef, Constraint, Database, Row, TableSchema};
use pstm_types::{TxnId, Value, ValueKind};

fn tmpfile(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pstm-persist-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build() -> (Database, pstm_storage::TableId, Vec<pstm_storage::RowId>) {
    let db = Database::new();
    let schema = TableSchema::new(
        "Hotel",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("rooms", ValueKind::Int)],
    )
    .unwrap();
    let t = db.create_table(schema, vec![Constraint::non_negative("rooms>=0", 1)]).unwrap();
    db.create_index(t, 0).unwrap();
    let boot = TxnId(1);
    db.begin(boot).unwrap();
    let rows: Vec<_> = (0..200)
        .map(|i| db.insert(boot, t, Row::new(vec![Value::Int(i), Value::Int(50 + i)])).unwrap())
        .collect();
    db.commit(boot).unwrap();
    (db, t, rows)
}

#[test]
fn save_and_open_round_trip() {
    let (db, t, rows) = build();
    let path = tmpfile("roundtrip.pstm");
    db.save_to(&path).unwrap();

    let reopened = Database::open_from(&path).unwrap();
    let t2 = reopened.table_id("Hotel").unwrap();
    assert_eq!(t2, t);
    assert_eq!(reopened.row_count(t2).unwrap(), 200);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(reopened.get_col(t2, *r, 1).unwrap(), Value::Int(50 + i as i64));
    }
    // Indexes were rebuilt.
    assert_eq!(reopened.lookup_eq(t2, 0, &Value::Int(7)).unwrap(), vec![rows[7]]);
    // Constraints still enforced.
    let w = TxnId(2);
    reopened.begin(w).unwrap();
    assert!(reopened.update(w, t2, rows[0], 1, Value::Int(-1)).is_err());
    reopened.update(w, t2, rows[0], 1, Value::Int(0)).unwrap();
    reopened.commit(w).unwrap();
}

#[test]
fn save_requires_quiescence() {
    let (db, t, rows) = build();
    let w = TxnId(5);
    db.begin(w).unwrap();
    db.update(w, t, rows[0], 1, Value::Int(1)).unwrap();
    let path = tmpfile("busy.pstm");
    assert!(db.save_to(&path).is_err(), "active txn must block the save");
    db.commit(w).unwrap();
    db.save_to(&path).unwrap();
}

#[test]
fn corrupted_file_rejected() {
    let (db, _, _) = build();
    let path = tmpfile("corrupt.pstm");
    db.save_to(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(Database::open_from(&path).is_err());
}

#[test]
fn missing_file_is_io_error() {
    let Err(err) = Database::open_from(tmpfile("does-not-exist.pstm")) else {
        panic!("opening a missing file must fail");
    };
    assert!(matches!(err, pstm_types::PstmError::Io(_)));
}

#[test]
fn save_open_save_again() {
    let (db, t, rows) = build();
    let path = tmpfile("cycle.pstm");
    db.save_to(&path).unwrap();
    let db2 = Database::open_from(&path).unwrap();
    let w = TxnId(9);
    db2.begin(w).unwrap();
    db2.update(w, t, rows[3], 1, Value::Int(999)).unwrap();
    db2.commit(w).unwrap();
    db2.save_to(&path).unwrap();
    let db3 = Database::open_from(&path).unwrap();
    assert_eq!(db3.get_col(t, rows[3], 1).unwrap(), Value::Int(999));
}

/// Regression (review finding): an *uncommitted* delete must not release
/// its row's space — another transaction filling the page would otherwise
/// make the abort's undo impossible.
#[test]
fn uncommitted_delete_space_is_not_stolen() {
    let db = Database::new();
    let schema = TableSchema::new(
        "Blob",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("body", ValueKind::Text)],
    )
    .unwrap();
    let t = db.create_table(schema, vec![]).unwrap();
    let boot = TxnId(1);
    db.begin(boot).unwrap();
    // Fill the first page tightly with ~200-byte rows.
    let big = |i: i64| Row::new(vec![Value::Int(i), Value::Text("x".repeat(180))]);
    let mut rows = Vec::new();
    for i in 0..19 {
        rows.push(db.insert(boot, t, big(i)).unwrap());
    }
    db.commit(boot).unwrap();
    let victim = rows[4];

    // T2 deletes a row (uncommitted), T3 storms the table with inserts
    // that would previously reuse the freed space.
    let t2 = TxnId(2);
    db.begin(t2).unwrap();
    db.delete(t2, t, victim).unwrap();
    assert!(db.get(t, victim).is_err(), "deleted row invisible while pending");

    let t3 = TxnId(3);
    db.begin(t3).unwrap();
    for i in 100..160 {
        db.insert(t3, t, big(i)).unwrap();
    }
    db.commit(t3).unwrap();

    // T2 aborts: its delete must be fully undone.
    db.abort(t2).unwrap();
    let restored = db.get(t, victim).unwrap();
    assert_eq!(restored.get(0), Some(&Value::Int(4)));
    assert_eq!(db.row_count(t).unwrap(), 19 + 60);
}

/// The committed-delete path does reclaim space.
#[test]
fn committed_delete_frees_space_for_reuse() {
    let db = Database::new();
    let schema = TableSchema::new(
        "Blob2",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("body", ValueKind::Text)],
    )
    .unwrap();
    let t = db.create_table(schema, vec![]).unwrap();
    let boot = TxnId(1);
    db.begin(boot).unwrap();
    let big = |i: i64| Row::new(vec![Value::Int(i), Value::Text("y".repeat(180))]);
    let mut rows = Vec::new();
    for i in 0..500 {
        rows.push(db.insert(boot, t, big(i)).unwrap());
    }
    db.commit(boot).unwrap();
    let pages_before = {
        // Delete everything (committed), reinsert: page count must not grow.
        let t2 = TxnId(2);
        db.begin(t2).unwrap();
        for r in &rows {
            db.delete(t2, t, *r).unwrap();
        }
        db.commit(t2).unwrap();
        let t3 = TxnId(3);
        db.begin(t3).unwrap();
        for i in 0..500 {
            db.insert(t3, t, big(i)).unwrap();
        }
        db.commit(t3).unwrap();
        db.row_count(t).unwrap()
    };
    assert_eq!(pages_before, 500);
}

/// DDL after the last checkpoint (or with no checkpoint at all) survives
/// a crash: CreateTable/CreateIndex are WAL-logged and replayed.
#[test]
fn ddl_without_checkpoint_survives_crash() {
    let db = Database::new();
    let schema = TableSchema::new(
        "LateTable",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("v", ValueKind::Int)],
    )
    .unwrap();
    let t = db.create_table(schema, vec![Constraint::non_negative("v>=0", 1)]).unwrap();
    db.create_index(t, 0).unwrap();
    let w = TxnId(1);
    db.begin(w).unwrap();
    let rid = db.insert(w, t, Row::new(vec![Value::Int(7), Value::Int(3)])).unwrap();
    db.commit(w).unwrap();

    // Crash with NO checkpoint ever taken: catalog + data must rebuild
    // from the WAL alone.
    db.simulate_crash_and_recover().unwrap();
    assert_eq!(db.table_id("LateTable").unwrap(), t);
    assert_eq!(db.get_col(t, rid, 1).unwrap(), Value::Int(3));
    assert_eq!(db.lookup_eq(t, 0, &Value::Int(7)).unwrap(), vec![rid]);

    // Constraints replay too.
    let w2 = TxnId(2);
    db.begin(w2).unwrap();
    assert!(db.update(w2, t, rid, 1, Value::Int(-1)).is_err());
}

/// Checkpoint, then more DDL, then crash: both the checkpointed table and
/// the post-checkpoint table recover.
#[test]
fn post_checkpoint_ddl_recovers() {
    let db = Database::new();
    let s1 = TableSchema::new("Early", vec![ColumnDef::new("id", ValueKind::Int)]).unwrap();
    let t1 = db.create_table(s1, vec![]).unwrap();
    db.checkpoint().unwrap();

    let s2 = TableSchema::new("Late", vec![ColumnDef::new("id", ValueKind::Int)]).unwrap();
    let t2 = db.create_table(s2, vec![]).unwrap();
    let w = TxnId(1);
    db.begin(w).unwrap();
    let r1 = db.insert(w, t1, Row::new(vec![Value::Int(1)])).unwrap();
    let r2 = db.insert(w, t2, Row::new(vec![Value::Int(2)])).unwrap();
    db.commit(w).unwrap();

    db.simulate_crash_and_recover().unwrap();
    assert_eq!(db.get_col(t1, r1, 0).unwrap(), Value::Int(1));
    assert_eq!(db.get_col(t2, r2, 0).unwrap(), Value::Int(2));
    assert_eq!(db.table_id("Late").unwrap(), t2);
}
