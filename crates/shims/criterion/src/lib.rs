//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface the workspace's `microbench`
//! suite uses — `benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`, `sample_size` — with a simple measurement loop:
//! warm up, then time a fixed number of samples and report mean and
//! minimum per iteration. No statistics machinery, but stable enough
//! to compare builds on the same machine.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim times one input per measurement either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup outputs.
    SmallInput,
    /// Large per-iteration setup outputs.
    LargeInput,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 60 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, sample_size }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    let mean = total / n as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!("{name:<40} mean {mean:>12?}   min {min:>12?}   ({n} samples)");
}

/// Measures closures handed to it by a benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up plus calibration: size the inner loop so one sample
        // is long enough for the clock to resolve.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let inner =
            (Duration::from_micros(50).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / inner);
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
