//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no registry access, so this crate provides
//! the small slice of serde's surface the workspace actually uses:
//! `Serialize`/`Deserialize` traits, the derive macros, and a
//! self-describing [`Content`] tree the `serde_json` shim renders to and
//! parses from. The data model follows serde's JSON conventions (unit
//! enum variants as strings, newtype variants as single-key maps,
//! `Option::None` as null, struct fields in declaration order) so
//! artifacts keep the familiar shape.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing intermediate value every `Serialize` produces and
/// every `Deserialize` consumes.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON null.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (JSON array).
    Seq(Vec<Content>),
    /// A key/value map (JSON object); insertion order is preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks up a key in serialized map entries (first match wins).
pub fn map_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Wraps a newtype enum variant: `{"Name": inner}`.
pub fn variant_newtype(name: &str, inner: Content) -> Content {
    Content::Map(vec![(name.to_string(), inner)])
}

/// Wraps a tuple enum variant: `{"Name": [fields...]}`.
pub fn variant_seq(name: &str, fields: Vec<Content>) -> Content {
    Content::Map(vec![(name.to_string(), Content::Seq(fields))])
}

/// Wraps a struct enum variant: `{"Name": {fields...}}`.
pub fn variant_map(name: &str, fields: Vec<(String, Content)>) -> Content {
    Content::Map(vec![(name.to_string(), Content::Map(fields))])
}

/// Deserialization failure.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type renderable to [`Content`].
pub trait Serialize {
    /// Converts `self` into the intermediate tree.
    fn to_content(&self) -> Content;
}

/// A type reconstructible from [`Content`].
pub trait Deserialize: Sized {
    /// Rebuilds a value from the intermediate tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Fallback when a struct field is absent (`Option` yields `None`;
    /// everything else errors).
    fn from_missing() -> Result<Self, DeError> {
        Err(DeError::custom("missing field"))
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let n: i64 = match content {
                    Content::I64(n) => *n,
                    Content::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(n) => Content::I64(n),
                    Err(_) => Content::U64(v),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let n: u64 = match content {
                    Content::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError::custom("negative integer for unsigned"))?,
                    Content::U64(n) => *n,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);
unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(f) => Ok(*f),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn from_missing() -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                Ok(($($t::from_content(
                    seq.get($n).ok_or_else(|| DeError::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Serializes a map key: serde only allows keys that render as strings
/// or integers in JSON; integers are stringified.
fn key_string(content: Content) -> String {
    match content {
        Content::Str(s) => s,
        Content::I64(n) => n.to_string(),
        Content::U64(n) => n.to_string(),
        Content::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

fn key_content(key: &str) -> Content {
    Content::Str(key.to_string())
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter().map(|(k, v)| (key_string(k.to_content()), v.to_content())).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = content.as_map().ok_or_else(|| DeError::custom("expected map"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_content(&key_content(k))?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = content.as_seq().ok_or_else(|| DeError::custom("expected sequence"))?;
        items.iter().map(T::from_content).collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (key_string(k.to_content()), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = content.as_map().ok_or_else(|| DeError::custom("expected map"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_content(&key_content(k))?, V::from_content(v)?)))
            .collect()
    }
}
