//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses:
//! seeded random generation, `proptest!` / `prop_oneof!` /
//! `prop_assert!` and friends, ranges, tuples, `Just`, `prop_map`,
//! `prop_filter`, `prop::collection::vec`, `prop::sample::select` and
//! `any::<T>()`. There is no shrinking: a failing case panics with the
//! case number so the (deterministic) seed reproduces it.

use rand::prelude::*;

/// The RNG driving generation.
pub type TestRng = StdRng;

/// Runner configuration (case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, regenerating (bounded retries).
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: gave up satisfying `{}` after 1000 tries", self.reason)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// String strategy from a simplified regex pattern. Supports the
/// `.{lo,hi}` form (printable-ASCII string with length in `[lo, hi]`);
/// any other pattern yields printable ASCII of length 0–16.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_pattern(self).unwrap_or((0, 16));
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| rng.gen_range(0x20u8..=0x7E) as char).collect()
    }
}

fn parse_len_pattern(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: covers subnormals, infinities and NaN;
        // callers filter what they cannot accept.
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: elements from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from `options`.
    pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "select: empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// The `prop::` module alias used by `proptest::prelude`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    pub use rand::prelude::*;
}

/// Failure raised inside a property body (via `return Err(...)`).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A hard failure with a message.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// A rejected input (treated as a failure here — no regeneration).
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic RNG for one (property, case) pair. Used by the
/// `proptest!` macro so failures reproduce without stored seeds.
#[must_use]
pub fn case_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Asserts a condition inside a property, reporting the case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running the body over seeded random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($strategy,)+);
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn filter_and_map_compose() {
        let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0).prop_map(|v| v + 1);
        let mut rng = crate::case_rng("filter_and_map_compose", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 1 && v <= 99);
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let strat = prop_oneof![Just(0u8), Just(1u8), (2u8..4)];
        let mut rng = crate::case_rng("oneof_hits_every_alternative", 0);
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn str_pattern_controls_length() {
        let strat = ".{2,5}";
        let mut rng = crate::case_rng("str_pattern_controls_length", 0);
        for _ in 0..100 {
            let s: String = Strategy::generate(&strat, &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.is_ascii());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u64..10, b in prop::collection::vec(0i64..5, 0..8)) {
            prop_assert!(a < 10);
            for x in b {
                prop_assert!((0..5).contains(&x));
            }
        }
    }
}
