//! Offline stand-in for `rand` 0.8.
//!
//! Provides the slice of the rand API the workspace uses —
//! `StdRng::seed_from_u64`, `gen_range`, `gen_bool`, `shuffle` — backed
//! by a xoshiro256** generator seeded via SplitMix64. Streams differ
//! from upstream rand's ChaCha-based `StdRng`, but every consumer in
//! this workspace only needs seed-determinism, which holds: the same
//! seed always yields the same stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic generator (xoshiro256**).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform f64 in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased integer in `[0, n)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[start, end)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform sample from `[start, end]`.
    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_incl(rng, *self.start(), *self.end())
    }
}

macro_rules! int_sample {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "gen_range: empty range");
        start + unit_f64(rng) * (end - start)
    }

    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start <= end, "gen_range: empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// High-level sampling methods.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        T: SampleUniform,
        R2: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice shuffling.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// Named generators.
pub mod rngs {
    pub use super::StdRng;
}

/// The convenience prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "gen_bool(0.3) observed {frac}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
