//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives behind parking_lot's
//! non-poisoning API: a panicking holder does not poison the lock for
//! everyone else, which is the behaviour the storage engine relies on.

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

// parking_lot names its guard types publicly; callers holding a guard
// across scopes need the name.
pub use std::sync::MutexGuard;

/// A reader-writer lock whose guards never poison.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex whose guard never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the mutex, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking; `None` if held.
    /// Ignores poisoning, like [`Mutex::lock`].
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
