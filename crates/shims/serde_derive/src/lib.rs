//! Derive macros for the offline `serde` shim.
//!
//! Parses the deriving item directly from the token stream (no `syn` /
//! `quote` — the build environment has no registry access) and emits
//! `Serialize` / `Deserialize` impls targeting the shim's `Content`
//! data model. Supports the shapes this workspace uses: unit / newtype /
//! tuple / named structs, enums with unit / newtype / tuple / struct
//! variants, and the `#[serde(skip)]` field attribute. Generics are not
//! supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: Option<String>,
    ty: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    UnitStruct(String),
    TupleStruct(String, Vec<Field>),
    NamedStruct(String, Vec<Field>),
    Enum(String, Vec<Variant>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            _ => i += 1,
        }
    }
    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found `{other}`"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving `{name}`)");
    }
    if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(name, parse_fields(g.stream(), true))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(name, parse_fields(g.stream(), false))
            }
            _ => Item::UnitStruct(name),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        }
    }
}

/// Splits a token sequence on commas that sit outside every bracket and
/// angle-bracket nesting level.
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Consumes leading `#[...]` attributes, reporting whether one of them
/// is `#[serde(skip)]`.
fn strip_attrs(tokens: &mut &[TokenTree]) -> bool {
    let mut skip = false;
    while let [TokenTree::Punct(p), TokenTree::Group(g), rest @ ..] = tokens {
        if p.as_char() != '#' {
            break;
        }
        let attr = g.stream().to_string();
        if attr.starts_with("serde") && attr.contains("skip") {
            skip = true;
        }
        *tokens = rest;
    }
    skip
}

fn strip_vis(tokens: &mut &[TokenTree]) {
    if let [TokenTree::Ident(id), rest @ ..] = tokens {
        if id.to_string() == "pub" {
            *tokens = rest;
            if let [TokenTree::Group(g), rest2 @ ..] = tokens {
                if g.delimiter() == Delimiter::Parenthesis {
                    *tokens = rest2;
                }
            }
        }
    }
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

fn parse_fields(stream: TokenStream, named: bool) -> Vec<Field> {
    split_top_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut rest: &[TokenTree] = &tokens;
            let skip = strip_attrs(&mut rest);
            strip_vis(&mut rest);
            if named {
                let (name, rest2) = match rest {
                    [TokenTree::Ident(id), TokenTree::Punct(c), rest2 @ ..]
                        if c.as_char() == ':' =>
                    {
                        (id.to_string(), rest2)
                    }
                    other => panic!("serde_derive: malformed named field: {other:?}"),
                };
                Field { name: Some(name), ty: tokens_to_string(rest2), skip }
            } else {
                Field { name: None, ty: tokens_to_string(rest), skip }
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut rest: &[TokenTree] = &tokens;
            strip_attrs(&mut rest);
            let name = match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: malformed enum variant: {other:?}"),
            };
            let kind = match rest.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(parse_fields(g.stream(), false))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_fields(g.stream(), true))
                }
                None => VariantKind::Unit,
                other => panic!("serde_derive: unsupported variant shape: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_variables, unreachable_patterns, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct(name) => (name, "::serde::Content::Null".to_string()),
        Item::TupleStruct(name, fields) if fields.len() == 1 => {
            (name, "::serde::Serialize::to_content(&self.0)".to_string())
        }
        Item::TupleStruct(name, fields) => {
            let elems: Vec<String> = (0..fields.len())
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            (name, format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", ")))
        }
        Item::NamedStruct(name, fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = f.name.as_ref().unwrap();
                pushes.push_str(&format!(
                    "__m.push((\"{fname}\".to_string(), \
                     ::serde::Serialize::to_content(&self.{fname})));\n"
                ));
            }
            (
                name,
                format!(
                    "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                     ::std::vec::Vec::new();\n{pushes}::serde::Content::Map(__m)"
                ),
            )
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(fields) if fields.len() == 1 => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::variant_newtype(\"{vname}\", \
                         ::serde::Serialize::to_content(__f0)),\n"
                    )),
                    VariantKind::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::variant_seq(\"{vname}\", \
                             ::std::vec![{}]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| {
                                format!(
                                    "(\"{b}\".to_string(), ::serde::Serialize::to_content({b}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::variant_map(\"{vname}\", \
                             ::std::vec![{}]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}"
    )
}

/// The `match` expression extracting one named field from map entries
/// bound to `__m`.
fn named_field_expr(owner: &str, f: &Field) -> String {
    if f.skip {
        return "::std::default::Default::default()".to_string();
    }
    let fname = f.name.as_ref().unwrap();
    let ty = &f.ty;
    format!(
        "match ::serde::map_get(__m, \"{fname}\") {{\n\
         ::std::option::Option::Some(__v) => <{ty} as ::serde::Deserialize>::from_content(__v)?,\n\
         ::std::option::Option::None => <{ty} as ::serde::Deserialize>::from_missing()\n\
         .map_err(|_| ::serde::DeError::custom(\"{owner}: missing field `{fname}`\"))?,\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct(name) => (
            name,
            format!(
                "match __c {{\n\
                 ::serde::Content::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"{name}: expected null\")),\n}}"
            ),
        ),
        Item::TupleStruct(name, fields) if fields.len() == 1 => {
            let ty = &fields[0].ty;
            (
                name,
                format!(
                    "::std::result::Result::Ok({name}(\
                     <{ty} as ::serde::Deserialize>::from_content(__c)?))"
                ),
            )
        }
        Item::TupleStruct(name, fields) => {
            let n = fields.len();
            let elems: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    format!("<{} as ::serde::Deserialize>::from_content(&__s[{i}])?", f.ty)
                })
                .collect();
            (
                name,
                format!(
                    "let __s = __c.as_seq().ok_or_else(|| \
                     ::serde::DeError::custom(\"{name}: expected sequence\"))?;\n\
                     if __s.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"{name}: wrong tuple length\"));\n}}\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                ),
            )
        }
        Item::NamedStruct(name, fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name.as_ref().unwrap(), named_field_expr(name, f)))
                .collect();
            (
                name,
                format!(
                    "let __m = __c.as_map().ok_or_else(|| \
                     ::serde::DeError::custom(\"{name}: expected map\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join(",\n")
                ),
            )
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(fields) if fields.len() == 1 => {
                        let ty = &fields[0].ty;
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             <{ty} as ::serde::Deserialize>::from_content(__v)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(fields) => {
                        let n = fields.len();
                        let elems: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(i, f)| {
                                format!(
                                    "<{} as ::serde::Deserialize>::from_content(&__s[{i}])?",
                                    f.ty
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                             \"{name}::{vname}: expected sequence\"))?;\n\
                             if __s.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"{name}::{vname}: wrong tuple length\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{}: {}",
                                    f.name.as_ref().unwrap(),
                                    named_field_expr(&format!("{name}::{vname}"), f)
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __m = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                             \"{name}::{vname}: expected map\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{}\n}})\n}}\n",
                            inits.join(",\n")
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"{name}: unknown variant `{{__other}}`\"))),\n}},\n\
                     ::serde::Content::Map(__map) if __map.len() == 1 => {{\n\
                     let (__k, __v) = &__map[0];\n\
                     match __k.as_str() {{\n{payload_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"{name}: unknown variant `{{__other}}`\"))),\n}}\n}}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     \"{name}: expected variant\")),\n}}"
                ),
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
