//! Offline stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Content`](serde::Content) tree to JSON
//! text (compact and pretty) and parses JSON text back. Matches the
//! parts of serde_json's observable behaviour the workspace relies on:
//! compact output has no whitespace (`"backend":"gtm"`), struct fields
//! appear in declaration order, floats always carry a decimal point or
//! exponent, and non-finite floats render as `null`.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

pub use serde::Content as Value;

/// Serialization / deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Standard result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_compact(v: &Content, out: &mut String) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => write_float(*f, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Content, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_content(&value).map_err(Error::from)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn parse_value_str(s: &str) -> Result<Content> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<()> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!("expected `{}` at byte {}", c as char, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Content> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => parse_lit(b, pos, "null", Content::Null),
        Some(b't') => parse_lit(b, pos, "true", Content::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Content::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Content::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Content::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Content::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Content::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Content::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(Error::new(format!("unexpected input {other:?} at byte {pos}"))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Content) -> Result<Content> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Content> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    if !float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Content::I64(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Content::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Content::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(Error::new(format!("invalid escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar at a time.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err(Error::new("unterminated string")),
        }
    }
}

/// Builds a [`Value`] from inline JSON syntax. Supports literals,
/// arrays, objects with string-literal keys, and Rust expressions as
/// leaf values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "name": "gtm",
            "n": 3,
            "pi": 3.5,
            "ok": true,
            "items": [1, 2, 3],
            "nothing": null,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"name":"gtm","n":3,"pi":3.5,"ok":true,"items":[1,2,3],"nothing":null}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}";
        let enc = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&enc).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_indents() {
        let v = json!({"a": [1], "b": {}});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
