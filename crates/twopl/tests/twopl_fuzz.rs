//! State-machine fuzzing for the 2PL baseline: arbitrary event sequences
//! must never panic, never corrupt the database (conservation of the
//! counters), and always leave the engine consistent.

use proptest::prelude::*;
use pstm_storage::{BindingRegistry, ColumnDef, Constraint, Database, Row, TableSchema};
use pstm_twopl::{TwoPlConfig, TwoPlManager, TxnPhase};
use pstm_types::{Duration, MemberId, ResourceId, ScalarOp, Timestamp, TxnId, Value, ValueKind};
use std::sync::Arc;

const INITIAL: i64 = 10_000;

#[derive(Debug, Clone)]
enum Ev {
    Begin(u64),
    Read(u64, usize),
    Sub(u64, usize, i64),
    Assign(u64, usize, i64),
    Commit(u64),
    Abort(u64),
    Sleep(u64),
    Awake(u64),
    Tick,
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (1u64..6).prop_map(Ev::Begin),
        (1u64..6, 0usize..2).prop_map(|(t, r)| Ev::Read(t, r)),
        (1u64..6, 0usize..2, 1i64..4).prop_map(|(t, r, c)| Ev::Sub(t, r, c)),
        (1u64..6, 0usize..2, 0i64..100).prop_map(|(t, r, c)| Ev::Assign(t, r, c)),
        (1u64..6).prop_map(Ev::Commit),
        (1u64..6).prop_map(Ev::Abort),
        (1u64..6).prop_map(Ev::Sleep),
        (1u64..6).prop_map(Ev::Awake),
        Just(Ev::Tick),
    ]
}

fn world() -> (TwoPlManager, Vec<ResourceId>, Arc<Database>) {
    let db = Arc::new(Database::new());
    let schema = TableSchema::new(
        "Obj",
        vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("v", ValueKind::Int)],
    )
    .unwrap();
    let table = db.create_table(schema, vec![Constraint::non_negative("v>=0", 1)]).unwrap();
    let boot = TxnId(1 << 40);
    db.begin(boot).unwrap();
    let mut bindings = BindingRegistry::new();
    let mut rs = Vec::new();
    for i in 0..2 {
        let row =
            db.insert(boot, table, Row::new(vec![Value::Int(i), Value::Int(INITIAL)])).unwrap();
        let o = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
        rs.push(ResourceId::atomic(o));
    }
    db.commit(boot).unwrap();
    let config = TwoPlConfig {
        sleep_timeout: Some(Duration::from_secs_f64(1.0)),
        lock_timeout: Some(Duration::from_secs_f64(2.0)),
        deadlock_detection: true,
    };
    (TwoPlManager::new(db.clone(), bindings, config), rs, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_random_events_never_corrupt_engine(events in prop::collection::vec(arb_event(), 1..120)) {
        let (mut m, rs, db) = world();
        let mut clock = 0u64;
        for ev in &events {
            clock += 200_000; // 0.2 s per event
            let now = Timestamp(clock);
            // Every call may return a typed error; none may panic.
            match ev {
                Ev::Begin(t) => { let _ = m.begin(TxnId(*t)); }
                Ev::Read(t, r) => { let _ = m.execute(TxnId(*t), rs[*r], ScalarOp::Read, now); }
                Ev::Sub(t, r, c) => {
                    let _ = m.execute(TxnId(*t), rs[*r], ScalarOp::Sub(Value::Int(*c)), now);
                }
                Ev::Assign(t, r, c) => {
                    let _ = m.execute(TxnId(*t), rs[*r], ScalarOp::Assign(Value::Int(*c)), now);
                }
                Ev::Commit(t) => { let _ = m.commit(TxnId(*t), now); }
                Ev::Abort(t) => { let _ = m.abort(TxnId(*t), now); }
                Ev::Sleep(t) => { let _ = m.sleep(TxnId(*t), now); }
                Ev::Awake(t) => { let _ = m.awake(TxnId(*t), now); }
                Ev::Tick => { let _ = m.tick(now); }
            }
        }
        // Drain: abort every transaction not already terminal so engine
        // undo runs for all of them.
        for t in 1u64..6 {
            if matches!(
                m.phase(TxnId(t)),
                Some(TxnPhase::Active) | Some(TxnPhase::Waiting) | Some(TxnPhase::Sleeping)
            ) {
                let _ = m.abort(TxnId(t), Timestamp(clock + 1));
            }
        }
        // Engine stays readable and every constraint holds.
        for r in &rs {
            let b = m.bindings().resolve(*r).unwrap();
            let v = db.get_col(b.table, b.row, b.column).unwrap().as_int().unwrap();
            prop_assert!(v >= 0, "constraint violated: {v}");
        }
        // Strict 2PL conservation sanity: committed work only; a final
        // crash+recover reproduces exactly the committed state.
        let before: Vec<Value> = rs
            .iter()
            .map(|r| {
                let b = m.bindings().resolve(*r).unwrap();
                db.get_col(b.table, b.row, b.column).unwrap()
            })
            .collect();
        db.checkpoint().unwrap();
        db.simulate_crash_and_recover().unwrap();
        let after: Vec<Value> = rs
            .iter()
            .map(|r| {
                let b = m.bindings().resolve(*r).unwrap();
                db.get_col(b.table, b.row, b.column).unwrap()
            })
            .collect();
        prop_assert_eq!(before, after);
    }
}
