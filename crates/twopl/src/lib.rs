//! `pstm-twopl` — the strict two-phase-locking baseline.
//!
//! The paper compares its pre-serialization middleware against "the 2PL
//! original protocol"; this crate implements that comparator over the same
//! storage engine so the Fig. 3 experiments contrast scheduling policies,
//! not substrates.
//!
//! Semantics implemented:
//!
//! * strict 2PL — shared locks for reads, exclusive for mutations, all
//!   locks held to commit/abort;
//! * lock upgrades (the §II scenario: read free tickets, then book);
//! * deadlock handling by waits-for-graph detection with youngest-victim
//!   abort, plus optional lock-wait timeouts;
//! * the classical treatment of disconnections: a sleeping transaction
//!   keeps its locks and is aborted once it exceeds the sleep timeout —
//!   the behaviour the paper's abort-percentage experiment charges 2PL
//!   with.

#![warn(missing_docs)]

pub mod manager;

pub use manager::{TwoPlConfig, TwoPlManager, TwoPlStats, TxnPhase};
