//! The strict 2PL transaction manager.

use pstm_lock::{LockManager, LockMode, LockOutcome};
use pstm_obs::{AbortOrigin, Ctr, MetricsRegistry, TraceEvent, Tracer};
use pstm_storage::{BindingRegistry, Database};
use pstm_types::{
    AbortReason, Duration, ExecOutcome, PstmError, PstmResult, ResourceId, ScalarOp, StepEffects,
    Timestamp, TxnId, Value,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of the baseline.
#[derive(Clone, Copy, Debug)]
pub struct TwoPlConfig {
    /// Abort a sleeping transaction after this long asleep — the
    /// classical answer to a disconnected client holding locks. `None`
    /// lets sleepers hold locks forever.
    pub sleep_timeout: Option<Duration>,
    /// Abort a waiter after this long queued. `None` disables.
    pub lock_timeout: Option<Duration>,
    /// Run waits-for-graph deadlock detection whenever a request waits.
    pub deadlock_detection: bool,
}

impl Default for TwoPlConfig {
    fn default() -> Self {
        TwoPlConfig {
            sleep_timeout: Some(Duration::from_secs_f64(30.0)),
            lock_timeout: None,
            deadlock_detection: true,
        }
    }
}

/// Life-cycle phase of a transaction under the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnPhase {
    /// Running normally.
    Active,
    /// Queued on a lock.
    Waiting,
    /// Disconnected/idle; locks retained.
    Sleeping,
    /// Finished successfully.
    Committed,
    /// Finished by abort.
    Aborted,
}

#[derive(Debug)]
struct TpTxn {
    phase: TxnPhase,
    engine_begun: bool,
    /// Operation stashed while waiting for its lock.
    pending: Option<(ResourceId, ScalarOp)>,
    sleep_since: Option<Timestamp>,
    /// Set while sleeping if the pending op completed during the sleep.
    completed_while_asleep: Option<Value>,
}

/// Counters for the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwoPlStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// System + user aborts.
    pub aborted: u64,
    /// Aborts of transactions that were asleep past the timeout.
    pub aborted_sleep_timeout: u64,
    /// Deadlock-victim aborts.
    pub aborted_deadlock: u64,
    /// Lock-wait-timeout aborts.
    pub aborted_lock_timeout: u64,
    /// Operations that completed (immediately or after a wait).
    pub ops_completed: u64,
    /// Operations that had to wait.
    pub ops_waited: u64,
}

impl TwoPlStats {
    /// Projects the baseline's counters out of an obs registry — the only
    /// way 2PL stats are produced, so they cannot drift from the trace.
    #[must_use]
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        TwoPlStats {
            begun: reg.counter(Ctr::Begun),
            committed: reg.counter(Ctr::Committed),
            aborted: reg.counter(Ctr::Aborted),
            aborted_sleep_timeout: reg.counter(Ctr::AbortedSleepTimeout),
            aborted_deadlock: reg.counter(Ctr::AbortedDeadlock),
            aborted_lock_timeout: reg.counter(Ctr::AbortedLockTimeout),
            ops_completed: reg.counter(Ctr::OpsCompleted),
            ops_waited: reg.counter(Ctr::OpsWaited),
        }
    }
}

/// The strict 2PL manager.
pub struct TwoPlManager {
    db: Arc<Database>,
    bindings: BindingRegistry,
    locks: LockManager,
    txns: BTreeMap<TxnId, TpTxn>,
    config: TwoPlConfig,
    tracer: Tracer,
}

impl TwoPlManager {
    /// Builds a manager over `db` with the given resource bindings.
    #[must_use]
    pub fn new(db: Arc<Database>, bindings: BindingRegistry, config: TwoPlConfig) -> Self {
        let tracer = Tracer::disabled();
        let mut locks = LockManager::new();
        locks.set_tracer(tracer.clone());
        TwoPlManager { db, bindings, locks, txns: BTreeMap::new(), config, tracer }
    }

    /// Installs a tracer, shared with the embedded lock manager so
    /// scheduler and lock events interleave in one trace. Builder-style;
    /// call before scheduling begins.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.locks.set_tracer(tracer.clone());
        self.tracer = tracer;
        self
    }

    /// The tracer this manager (and its lock table) emits into.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Immutable view of the counters, projected from the tracer's
    /// registry.
    #[must_use]
    pub fn stats(&self) -> TwoPlStats {
        self.tracer.with_registry(TwoPlStats::from_registry)
    }

    /// Phase of `txn`, if known.
    #[must_use]
    pub fn phase(&self, txn: TxnId) -> Option<TxnPhase> {
        self.txns.get(&txn).map(|t| t.phase)
    }

    /// The shared database handle.
    #[must_use]
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The binding registry (resource → storage locations).
    #[must_use]
    pub fn bindings(&self) -> &BindingRegistry {
        &self.bindings
    }

    /// `⟨begin, A⟩`.
    pub fn begin(&mut self, txn: TxnId) -> PstmResult<()> {
        if self.txns.contains_key(&txn) {
            return Err(PstmError::InvalidState { txn, action: "begin", state: "already known" });
        }
        self.txns.insert(
            txn,
            TpTxn {
                phase: TxnPhase::Active,
                engine_begun: false,
                pending: None,
                sleep_since: None,
                completed_while_asleep: None,
            },
        );
        self.tracer.emit_unclocked(TraceEvent::TxnBegin { txn });
        Ok(())
    }

    fn txn_mut(&mut self, txn: TxnId) -> PstmResult<&mut TpTxn> {
        self.txns.get_mut(&txn).ok_or(PstmError::UnknownTxn(txn))
    }

    /// Submits one operation. Reads take a shared lock, mutations an
    /// exclusive lock (upgrading a held shared lock if necessary).
    pub fn execute(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        now: Timestamp,
    ) -> PstmResult<(ExecOutcome, StepEffects)> {
        let state = self.txn_mut(txn)?;
        if state.phase != TxnPhase::Active {
            return Err(PstmError::InvalidState {
                txn,
                action: "execute",
                state: phase_name(state.phase),
            });
        }
        let class = op.class();
        self.tracer.emit(now, TraceEvent::OpRequested { txn, resource, class });
        let mode = if op.is_mutation() { LockMode::Exclusive } else { LockMode::Shared };
        match self.locks.request(txn, resource, mode, now)? {
            LockOutcome::Granted => {
                let value = match self.perform(txn, resource, &op) {
                    Ok(v) => v,
                    Err(PstmError::ConstraintViolation { .. }) => {
                        // A constraint rejection kills the whole
                        // transaction, classical DBMS-style.
                        let effects = self.abort_internal(
                            txn,
                            AbortReason::Constraint,
                            AbortOrigin::Request,
                            now,
                        )?;
                        return Ok((ExecOutcome::Aborted(AbortReason::Constraint), effects));
                    }
                    Err(e) => return Err(e),
                };
                self.tracer.emit(
                    now,
                    TraceEvent::OpGranted {
                        txn,
                        resource,
                        class,
                        shared: false,
                        bypassed_sleeper: false,
                    },
                );
                Ok((ExecOutcome::Completed(value), StepEffects::none()))
            }
            LockOutcome::Waiting => {
                let queue_depth = self.locks.waiter_count(resource) as u32;
                self.tracer.emit(now, TraceEvent::OpWaiting { txn, resource, class, queue_depth });
                let state = self.txn_mut(txn)?;
                state.phase = TxnPhase::Waiting;
                state.pending = Some((resource, op));
                let mut effects = StepEffects::none();
                if self.config.deadlock_detection {
                    if let Some((victim, _cycle)) = self.locks.detect_deadlock_from(txn) {
                        let victim_effects = self.abort_internal(
                            victim,
                            AbortReason::Deadlock,
                            AbortOrigin::Request,
                            now,
                        )?;
                        if victim == txn {
                            let mut eff = victim_effects;
                            // The requester itself died; it is not also
                            // reported in `aborted`.
                            eff.aborted.retain(|(t, _)| *t != txn);
                            return Ok((ExecOutcome::Aborted(AbortReason::Deadlock), eff));
                        }
                        effects.merge(victim_effects);
                        // The victim's release may have granted our lock —
                        // and the granted op may itself have aborted us
                        // (constraint violation in finish_promotions).
                        if let Some(pos) = effects.aborted.iter().position(|(t, _)| *t == txn) {
                            let (_, reason) = effects.aborted.remove(pos);
                            return Ok((ExecOutcome::Aborted(reason), effects));
                        }
                        if let Some(pos) = effects.resumed.iter().position(|(t, _)| *t == txn) {
                            let (_, value) = effects.resumed.remove(pos);
                            return Ok((ExecOutcome::Completed(value), effects));
                        }
                    }
                }
                Ok((ExecOutcome::Waiting, effects))
            }
        }
    }

    /// Executes a granted operation against the database.
    fn perform(&mut self, txn: TxnId, resource: ResourceId, op: &ScalarOp) -> PstmResult<Value> {
        let binding = self.bindings.resolve(resource)?;
        let current = self.db.get_col(binding.table, binding.row, binding.column)?;
        let new = op.apply(&current)?;
        if op.is_mutation() {
            let state = self.txn_mut(txn)?;
            if !state.engine_begun {
                state.engine_begun = true;
                self.db.begin(txn)?;
            }
            self.db.update(txn, binding.table, binding.row, binding.column, new.clone())?;
        }
        Ok(new)
    }

    /// Completes the stashed operations of promoted transactions.
    fn finish_promotions(
        &mut self,
        promoted: Vec<TxnId>,
        now: Timestamp,
    ) -> PstmResult<StepEffects> {
        let mut effects = StepEffects::none();
        for p in promoted {
            let Some(state) = self.txns.get_mut(&p) else { continue };
            let Some((resource, op)) = state.pending.take() else { continue };
            let was_sleeping = state.phase == TxnPhase::Sleeping;
            match self.perform(p, resource, &op) {
                Ok(value) => {
                    self.tracer.emit(
                        now,
                        TraceEvent::OpGranted {
                            txn: p,
                            resource,
                            class: op.class(),
                            shared: false,
                            bypassed_sleeper: false,
                        },
                    );
                    let state = self.txn_mut(p)?;
                    if was_sleeping {
                        state.completed_while_asleep = Some(value.clone());
                    } else {
                        state.phase = TxnPhase::Active;
                    }
                    effects.resumed.push((p, value));
                }
                Err(PstmError::ConstraintViolation { .. }) => {
                    let sub = self.abort_internal(
                        p,
                        AbortReason::Constraint,
                        AbortOrigin::Promotion,
                        now,
                    )?;
                    effects.merge(sub);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(effects)
    }

    /// `⟨commit, A⟩` — strict 2PL: apply is already done; release all
    /// locks and let waiters in.
    pub fn commit(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        let state = self.txn_mut(txn)?;
        if state.phase != TxnPhase::Active {
            return Err(PstmError::InvalidState {
                txn,
                action: "commit",
                state: phase_name(state.phase),
            });
        }
        if state.engine_begun {
            self.db.commit(txn)?;
        }
        self.txn_mut(txn)?.phase = TxnPhase::Committed;
        self.tracer.emit(now, TraceEvent::Committed { txn });
        let promoted = self.locks.release_all(txn);
        self.finish_promotions(promoted, now)
    }

    /// User-requested abort.
    pub fn abort(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        self.abort_internal(txn, AbortReason::User, AbortOrigin::User, now)
    }

    fn abort_internal(
        &mut self,
        txn: TxnId,
        reason: AbortReason,
        origin: AbortOrigin,
        now: Timestamp,
    ) -> PstmResult<StepEffects> {
        let state = self.txn_mut(txn)?;
        if matches!(state.phase, TxnPhase::Committed | TxnPhase::Aborted) {
            return Err(PstmError::InvalidState {
                txn,
                action: "abort",
                state: phase_name(state.phase),
            });
        }
        if state.engine_begun {
            self.db.abort(txn)?;
        }
        let state = self.txn_mut(txn)?;
        state.phase = TxnPhase::Aborted;
        state.pending = None;
        self.tracer.emit(now, TraceEvent::Aborted { txn, reason, origin });
        let promoted = self.locks.release_all(txn);
        let mut effects = self.finish_promotions(promoted, now)?;
        effects.aborted.push((txn, reason));
        Ok(effects)
    }

    /// `⟨sleep, A⟩` — the client disconnected or went idle. Locks are
    /// retained (that is the 2PL pathology the paper targets).
    pub fn sleep(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()> {
        let state = self.txn_mut(txn)?;
        match state.phase {
            TxnPhase::Active | TxnPhase::Waiting => {
                state.phase = TxnPhase::Sleeping;
                state.sleep_since = Some(now);
                self.tracer.emit(now, TraceEvent::TxnSlept { txn });
                Ok(())
            }
            other => {
                Err(PstmError::InvalidState { txn, action: "sleep", state: phase_name(other) })
            }
        }
    }

    /// `⟨awake, A⟩` — the client reconnected. Under 2PL a sleeper that
    /// survived the timeout simply resumes; its locks never left. Returns
    /// the result of an operation that completed during the sleep, if
    /// any.
    pub fn awake(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<Option<Value>> {
        let state = self.txn_mut(txn)?;
        if state.phase != TxnPhase::Sleeping {
            return Err(PstmError::InvalidState {
                txn,
                action: "awake",
                state: phase_name(state.phase),
            });
        }
        state.sleep_since = None;
        let done = state.completed_while_asleep.take();
        state.phase = if state.pending.is_some() { TxnPhase::Waiting } else { TxnPhase::Active };
        self.tracer.emit(now, TraceEvent::TxnAwoke { txn });
        Ok(done)
    }

    /// Periodic maintenance: sleep timeouts, lock-wait timeouts, deadlock
    /// detection. The simulator calls this on every clock advance.
    pub fn tick(&mut self, now: Timestamp) -> PstmResult<StepEffects> {
        let mut effects = StepEffects::none();
        if let Some(timeout) = self.config.sleep_timeout {
            let expired: Vec<TxnId> = self
                .txns
                .iter()
                .filter(|(_, s)| {
                    s.phase == TxnPhase::Sleeping
                        && s.sleep_since.is_some_and(|since| now.since(since) >= timeout)
                })
                .map(|(t, _)| *t)
                .collect();
            for t in expired {
                // Re-check per abort: an earlier abort in this loop may
                // have cascade-aborted this sleeper already.
                if self.txns.get(&t).is_some_and(|s| s.phase == TxnPhase::Sleeping) {
                    effects.merge(self.abort_internal(
                        t,
                        AbortReason::SleepTimeout,
                        AbortOrigin::Tick,
                        now,
                    )?);
                }
            }
        }
        if let Some(timeout) = self.config.lock_timeout {
            for t in self.locks.timed_out_waiters(now, timeout) {
                // A sleeping waiter is already covered by the sleep path;
                // re-checking per iteration also guards against waiters
                // promoted (or aborted) by an earlier victim's release.
                if self.txns.get(&t).is_some_and(|s| s.phase == TxnPhase::Waiting) {
                    effects.merge(self.abort_internal(
                        t,
                        AbortReason::LockTimeout,
                        AbortOrigin::Tick,
                        now,
                    )?);
                }
            }
        }
        if self.config.deadlock_detection {
            while let Some((victim, _)) = self.locks.detect_deadlock() {
                effects.merge(self.abort_internal(
                    victim,
                    AbortReason::Deadlock,
                    AbortOrigin::Tick,
                    now,
                )?);
            }
        }
        Ok(effects)
    }
}

fn phase_name(p: TxnPhase) -> &'static str {
    match p {
        TxnPhase::Active => "active",
        TxnPhase::Waiting => "waiting",
        TxnPhase::Sleeping => "sleeping",
        TxnPhase::Committed => "committed",
        TxnPhase::Aborted => "aborted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_storage::{ColumnDef, Constraint, Row, TableSchema};
    use pstm_types::{MemberId, ValueKind};

    /// One table, three atomic objects with `free = 100`.
    fn setup(config: TwoPlConfig) -> (TwoPlManager, Vec<ResourceId>) {
        let db = Arc::new(Database::new());
        let schema = TableSchema::new(
            "Flight",
            vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("free", ValueKind::Int)],
        )
        .unwrap();
        let table =
            db.create_table(schema, vec![Constraint::non_negative("free >= 0", 1)]).unwrap();
        let setup_txn = TxnId(1_000_000);
        db.begin(setup_txn).unwrap();
        let mut bindings = BindingRegistry::new();
        let mut resources = Vec::new();
        for i in 0..3 {
            let row = db
                .insert(setup_txn, table, Row::new(vec![Value::Int(i), Value::Int(100)]))
                .unwrap();
            let obj = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
            resources.push(ResourceId::atomic(obj));
        }
        db.commit(setup_txn).unwrap();
        (TwoPlManager::new(db, bindings, config), resources)
    }

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    const T0: Timestamp = Timestamp(0);

    #[test]
    fn single_txn_reads_and_writes() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        let (out, _) = m.execute(t(1), res[0], ScalarOp::Read, T0).unwrap();
        assert_eq!(out, ExecOutcome::Completed(Value::Int(100)));
        let (out, _) = m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert_eq!(out, ExecOutcome::Completed(Value::Int(99)));
        m.commit(t(1), T0).unwrap();
        assert_eq!(m.phase(t(1)), Some(TxnPhase::Committed));
        // Durable in the engine.
        let b = m.bindings().resolve(res[0]).unwrap();
        assert_eq!(m.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(99));
    }

    #[test]
    fn writers_block_each_other() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        m.begin(t(2)).unwrap();
        m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        let (out, _) = m.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert_eq!(out, ExecOutcome::Waiting);
        assert_eq!(m.phase(t(2)), Some(TxnPhase::Waiting));
        // Commit of t1 resumes t2 with its op applied.
        let effects = m.commit(t(1), T0).unwrap();
        assert_eq!(effects.resumed, vec![(t(2), Value::Int(98))]);
        assert_eq!(m.phase(t(2)), Some(TxnPhase::Active));
        m.commit(t(2), T0).unwrap();
    }

    #[test]
    fn readers_share() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        m.begin(t(2)).unwrap();
        let (o1, _) = m.execute(t(1), res[0], ScalarOp::Read, T0).unwrap();
        let (o2, _) = m.execute(t(2), res[0], ScalarOp::Read, T0).unwrap();
        assert!(matches!(o1, ExecOutcome::Completed(_)));
        assert!(matches!(o2, ExecOutcome::Completed(_)));
    }

    #[test]
    fn upgrade_deadlock_aborts_younger() {
        // The paper's §II motivating failure: both read, both book.
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        m.begin(t(2)).unwrap();
        m.execute(t(1), res[0], ScalarOp::Read, T0).unwrap();
        m.execute(t(2), res[0], ScalarOp::Read, T0).unwrap();
        let (o1, _) = m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert_eq!(o1, ExecOutcome::Waiting);
        // t2's upgrade completes the deadlock; t2 (younger) dies and t1
        // gets the lock, completing its stashed op.
        let (o2, effects) = m.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert_eq!(o2, ExecOutcome::Aborted(AbortReason::Deadlock));
        assert_eq!(effects.resumed, vec![(t(1), Value::Int(99))]);
        assert_eq!(m.phase(t(2)), Some(TxnPhase::Aborted));
        assert_eq!(m.phase(t(1)), Some(TxnPhase::Active));
        m.commit(t(1), T0).unwrap();
        assert_eq!(m.stats().aborted_deadlock, 1);
    }

    #[test]
    fn abort_rolls_back_engine_state() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(10)), T0).unwrap();
        m.abort(t(1), T0).unwrap();
        let b = m.bindings().resolve(res[0]).unwrap();
        assert_eq!(m.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(100));
    }

    #[test]
    fn sleeping_holder_blocks_until_timeout_abort() {
        let config = TwoPlConfig {
            sleep_timeout: Some(Duration::from_secs_f64(10.0)),
            ..TwoPlConfig::default()
        };
        let (mut m, res) = setup(config);
        m.begin(t(1)).unwrap();
        m.begin(t(2)).unwrap();
        m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        m.sleep(t(1), Timestamp::from_secs_f64(1.0)).unwrap();
        let (out, _) = m
            .execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), Timestamp::from_secs_f64(2.0))
            .unwrap();
        assert_eq!(out, ExecOutcome::Waiting, "sleeper keeps its lock");

        // Before the timeout nothing happens.
        let fx = m.tick(Timestamp::from_secs_f64(5.0)).unwrap();
        assert!(fx.is_empty());
        // Past the timeout the sleeper is aborted, t2 resumes against the
        // rolled-back value.
        let fx = m.tick(Timestamp::from_secs_f64(12.0)).unwrap();
        assert_eq!(fx.aborted, vec![(t(1), AbortReason::SleepTimeout)]);
        assert_eq!(fx.resumed, vec![(t(2), Value::Int(99))]);
        assert_eq!(m.stats().aborted_sleep_timeout, 1);
    }

    #[test]
    fn sleeper_under_timeout_resumes_with_locks() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        m.sleep(t(1), T0).unwrap();
        m.tick(Timestamp::from_secs_f64(1.0)).unwrap();
        assert_eq!(m.awake(t(1), Timestamp::from_secs_f64(2.0)).unwrap(), None);
        assert_eq!(m.phase(t(1)), Some(TxnPhase::Active));
        let fx = m.commit(t(1), Timestamp::from_secs_f64(3.0)).unwrap();
        assert!(fx.is_empty());
    }

    #[test]
    fn waiting_sleeper_completes_op_during_sleep() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        m.begin(t(2)).unwrap();
        m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        m.execute(t(2), res[0], ScalarOp::Sub(Value::Int(2)), T0).unwrap(); // waits
        m.sleep(t(2), T0).unwrap();
        let fx = m.commit(t(1), T0).unwrap();
        assert_eq!(fx.resumed, vec![(t(2), Value::Int(97))]);
        assert_eq!(m.phase(t(2)), Some(TxnPhase::Sleeping), "still disconnected");
        assert_eq!(m.awake(t(2), T0).unwrap(), Some(Value::Int(97)));
        assert_eq!(m.phase(t(2)), Some(TxnPhase::Active));
        m.commit(t(2), T0).unwrap();
    }

    #[test]
    fn lock_timeout_aborts_waiters() {
        let config = TwoPlConfig {
            lock_timeout: Some(Duration::from_secs_f64(5.0)),
            deadlock_detection: false,
            ..TwoPlConfig::default()
        };
        let (mut m, res) = setup(config);
        m.begin(t(1)).unwrap();
        m.begin(t(2)).unwrap();
        m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        m.execute(t(2), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        let fx = m.tick(Timestamp::from_secs_f64(6.0)).unwrap();
        assert_eq!(fx.aborted, vec![(t(2), AbortReason::LockTimeout)]);
        assert_eq!(m.stats().aborted_lock_timeout, 1);
    }

    #[test]
    fn constraint_violation_aborts_whole_txn() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(50)), T0).unwrap();
        let (out, _) = m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(60)), T0).unwrap();
        assert_eq!(out, ExecOutcome::Aborted(AbortReason::Constraint));
        // First subtraction also rolled back.
        let b = m.bindings().resolve(res[0]).unwrap();
        assert_eq!(m.database().get_col(b.table, b.row, b.column).unwrap(), Value::Int(100));
    }

    #[test]
    fn state_machine_guards() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        assert!(m.begin(t(1)).is_err());
        assert!(m.awake(t(1), T0).is_err(), "awake requires sleeping");
        m.commit(t(1), T0).unwrap();
        assert!(m.execute(t(1), res[0], ScalarOp::Read, T0).is_err());
        assert!(m.commit(t(1), T0).is_err());
        assert!(m.sleep(t(1), T0).is_err());
        assert!(m.execute(t(99), res[0], ScalarOp::Read, T0).is_err(), "unknown txn");
    }

    #[test]
    fn independent_resources_do_not_interfere() {
        let (mut m, res) = setup(TwoPlConfig::default());
        m.begin(t(1)).unwrap();
        m.begin(t(2)).unwrap();
        let (o1, _) = m.execute(t(1), res[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        let (o2, _) = m.execute(t(2), res[1], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert!(matches!(o1, ExecOutcome::Completed(_)));
        assert!(matches!(o2, ExecOutcome::Completed(_)));
        m.commit(t(1), T0).unwrap();
        m.commit(t(2), T0).unwrap();
        assert_eq!(m.stats().committed, 2);
    }
}
