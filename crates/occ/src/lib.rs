//! `pstm-occ` — a backward-validation optimistic concurrency control
//! (BOCC) comparator.
//!
//! The paper's introduction dismisses purely optimistic approaches for
//! long running transactions: they "allow different transactions to
//! immediately and concurrently operate on the various resources … anyway
//! such approaches could cause the management of a high number of
//! rollback operations … when a high rate of transaction conflicts
//! occurs." This crate makes that claim measurable.
//!
//! Semantics (classical BOCC, serial validation):
//!
//! * **read phase** — every operation runs immediately against the
//!   transaction's private snapshot (database value at first touch,
//!   overlaid with its own buffered writes); nothing ever waits;
//! * **validation** — at commit, the transaction is checked against every
//!   transaction that committed after it started: any overlap between a
//!   committed write set and this transaction's read set fails
//!   validation and aborts it ([`pstm_types::AbortReason::Validation`]);
//! * **write phase** — on success the buffered writes are applied as one
//!   atomic engine write set (CHECK constraints enforced) and the
//!   transaction's write set is recorded for future validations.
//!
//! Sleeping costs nothing mechanically — no locks are held — but a long
//! sleep widens the validation window, which is precisely why optimistic
//! schemes shed disconnected transactions at commit time instead of at
//! at awake time.

#![warn(missing_docs)]

pub mod manager;

pub use manager::{OccManager, OccStats};

use pstm_sim::{AwakeOutcome, Backend, CommitOutcome};
use pstm_types::{ExecOutcome, PstmResult, ResourceId, ScalarOp, StepEffects, Timestamp, TxnId};

/// Simulator adapter.
pub struct OccBackend(pub OccManager);

impl Backend for OccBackend {
    fn name(&self) -> &'static str {
        "occ"
    }

    fn begin(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()> {
        self.0.begin(txn, now)
    }

    fn execute(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        now: Timestamp,
    ) -> PstmResult<(ExecOutcome, StepEffects)> {
        self.0.execute(txn, resource, op, now).map(|o| (o, StepEffects::none()))
    }

    fn commit(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(CommitOutcome, StepEffects)> {
        let outcome = match self.0.commit(txn, now)? {
            Ok(()) => CommitOutcome::Committed,
            Err(reason) => CommitOutcome::Aborted(reason),
        };
        Ok((outcome, StepEffects::none()))
    }

    fn abort(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        self.0.abort(txn, now)?;
        Ok(StepEffects::none())
    }

    fn sleep(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<StepEffects> {
        self.0.sleep(txn, now)?;
        Ok(StepEffects::none())
    }

    fn awake(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<(AwakeOutcome, StepEffects)> {
        self.0.awake(txn, now)?;
        Ok((AwakeOutcome::Resumed, StepEffects::none()))
    }

    fn tick(&mut self, _now: Timestamp) -> PstmResult<StepEffects> {
        Ok(StepEffects::none())
    }
}
