//! The BOCC transaction manager.

use pstm_obs::{AbortOrigin, Ctr, MetricsRegistry, TraceEvent, Tracer};
use pstm_storage::{BindingRegistry, Database, WriteOp, WriteSet};
use pstm_types::{
    AbortReason, ExecOutcome, PstmError, PstmResult, ResourceId, ScalarOp, Timestamp, TxnId, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OccPhase {
    Reading,
    Sleeping,
    Committed,
    Aborted,
}

#[derive(Debug)]
struct OccTxn {
    phase: OccPhase,
    /// The global serial number when the transaction started — it must
    /// validate against every transaction committed after this.
    start_serial: u64,
    read_set: BTreeSet<ResourceId>,
    /// Private snapshot per resource (database value at first touch,
    /// overlaid with the transaction's own writes).
    snapshot: BTreeMap<ResourceId, Value>,
    write_buffer: BTreeMap<ResourceId, Value>,
}

/// Counters for the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccStats {
    /// Transactions begun.
    pub begun: u64,
    /// Commits that passed validation.
    pub committed: u64,
    /// All aborts.
    pub aborted: u64,
    /// Validation failures.
    pub aborted_validation: u64,
    /// Constraint rejections in the write phase.
    pub aborted_constraint: u64,
    /// Operations executed (never wait under OCC).
    pub ops_completed: u64,
}

impl OccStats {
    /// Projects the OCC counters out of an obs registry — the only way
    /// OCC stats are produced, so they cannot drift from the trace.
    #[must_use]
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        OccStats {
            begun: reg.counter(Ctr::Begun),
            committed: reg.counter(Ctr::Committed),
            aborted: reg.counter(Ctr::Aborted),
            aborted_validation: reg.counter(Ctr::AbortedValidation),
            aborted_constraint: reg.counter(Ctr::AbortedConstraint),
            ops_completed: reg.counter(Ctr::OpsCompleted),
        }
    }
}

/// Engine-txn id offset for OCC write phases (disjoint from middleware
/// and SST id spaces).
const OCC_ID_BASE: u64 = 1 << 49;

/// The optimistic manager.
///
/// # Example — validation failure under overlap
///
/// ```
/// use pstm_occ::OccManager;
/// use pstm_types::{AbortReason, ScalarOp, Timestamp, TxnId, Value};
/// use pstm_workload::counter_world;
///
/// let world = counter_world(1, 100)?;
/// let mut occ = OccManager::new(world.db.clone(), world.bindings.clone());
/// let x = world.resources[0];
/// let t0 = Timestamp::ZERO;
///
/// occ.begin(TxnId(1), t0)?;
/// occ.begin(TxnId(2), t0)?;
/// occ.execute(TxnId(1), x, ScalarOp::Sub(Value::Int(1)), t0)?;
/// occ.execute(TxnId(2), x, ScalarOp::Sub(Value::Int(1)), t0)?;
/// assert_eq!(occ.commit(TxnId(1), t0)?, Ok(()));
/// // The second subtractor read state a later committer overwrote:
/// assert_eq!(occ.commit(TxnId(2), t0)?, Err(AbortReason::Validation));
/// # Ok::<(), pstm_types::PstmError>(())
/// ```
pub struct OccManager {
    db: Arc<Database>,
    bindings: BindingRegistry,
    txns: BTreeMap<TxnId, OccTxn>,
    /// Monotonic commit serial.
    serial: u64,
    /// Committed write sets, newest last: `(serial, resources)`.
    committed_writes: Vec<(u64, BTreeSet<ResourceId>)>,
    tracer: Tracer,
}

impl OccManager {
    /// Builds a manager over `db`.
    #[must_use]
    pub fn new(db: Arc<Database>, bindings: BindingRegistry) -> Self {
        OccManager {
            db,
            bindings,
            txns: BTreeMap::new(),
            serial: 0,
            committed_writes: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Replaces the tracer (builder style) so events reach a shared sink.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The manager's tracer handle.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Counter snapshot, projected from the obs registry.
    #[must_use]
    pub fn stats(&self) -> OccStats {
        self.tracer.with_registry(OccStats::from_registry)
    }

    /// The shared database handle.
    #[must_use]
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn txn_mut(&mut self, txn: TxnId) -> PstmResult<&mut OccTxn> {
        self.txns.get_mut(&txn).ok_or(PstmError::UnknownTxn(txn))
    }

    /// Starts a transaction. Ids at or above the reserved engine id space
    /// (`1 << 49`) are rejected — they would collide with the ids write
    /// phases run under.
    pub fn begin(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()> {
        if self.txns.contains_key(&txn) {
            return Err(PstmError::InvalidState { txn, action: "begin", state: "already known" });
        }
        if txn.0 >= OCC_ID_BASE {
            return Err(PstmError::InvalidState {
                txn,
                action: "begin with an id in the reserved engine id space",
                state: "rejected",
            });
        }
        self.txns.insert(
            txn,
            OccTxn {
                phase: OccPhase::Reading,
                start_serial: self.serial,
                read_set: BTreeSet::new(),
                snapshot: BTreeMap::new(),
                write_buffer: BTreeMap::new(),
            },
        );
        self.tracer.emit(now, TraceEvent::TxnBegin { txn });
        Ok(())
    }

    /// Runs one operation against the private snapshot. Never waits.
    pub fn execute(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        op: ScalarOp,
        now: Timestamp,
    ) -> PstmResult<ExecOutcome> {
        let binding = self.bindings.resolve(resource)?;
        let class = op.class();
        let state = self.txns.get_mut(&txn).ok_or(PstmError::UnknownTxn(txn))?;
        if state.phase != OccPhase::Reading {
            return Err(PstmError::InvalidState {
                txn,
                action: "execute",
                state: phase_name(state.phase),
            });
        }
        self.tracer.emit(now, TraceEvent::OpRequested { txn, resource, class });
        let state = self.txns.get_mut(&txn).expect("checked above");
        state.read_set.insert(resource);
        let current = match state.snapshot.get(&resource) {
            Some(v) => v.clone(),
            None => {
                let v = self.db.get_col(binding.table, binding.row, binding.column)?;
                state.snapshot.insert(resource, v.clone());
                v
            }
        };
        let new = op.apply(&current)?;
        if op.is_mutation() {
            state.snapshot.insert(resource, new.clone());
            state.write_buffer.insert(resource, new.clone());
        }
        self.tracer.emit(
            now,
            TraceEvent::OpGranted { txn, resource, class, shared: false, bypassed_sleeper: false },
        );
        Ok(ExecOutcome::Completed(new))
    }

    /// Validates and, on success, applies the write phase. Returns
    /// `Ok(Ok(()))` on commit, `Ok(Err(reason))` on a system abort.
    #[allow(clippy::type_complexity)]
    pub fn commit(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<Result<(), AbortReason>> {
        let state = self.txns.get(&txn).ok_or(PstmError::UnknownTxn(txn))?;
        if state.phase != OccPhase::Reading {
            return Err(PstmError::InvalidState {
                txn,
                action: "commit",
                state: phase_name(state.phase),
            });
        }
        // Backward validation: any committed writer after my start that
        // touched my read set invalidates me.
        let start = state.start_serial;
        let invalid = self
            .committed_writes
            .iter()
            .filter(|(s, _)| *s > start)
            .any(|(_, writes)| writes.intersection(&state.read_set).next().is_some());
        if invalid {
            self.finish_abort(txn, AbortReason::Validation, AbortOrigin::Commit, now);
            return Ok(Err(AbortReason::Validation));
        }
        // Write phase: one atomic engine write set.
        let state = self.txns.get(&txn).expect("validated txn exists");
        let mut ws = WriteSet::new();
        for (resource, value) in &state.write_buffer {
            let b = self.bindings.resolve(*resource)?;
            ws = ws.with(WriteOp::Update {
                table: b.table,
                row_id: b.row,
                column: b.column,
                value: value.clone(),
            });
        }
        if !ws.is_empty() {
            match self.db.apply_write_set(TxnId(OCC_ID_BASE + txn.0), &ws) {
                Ok(_) => {}
                Err(PstmError::ConstraintViolation { .. }) => {
                    self.finish_abort(txn, AbortReason::Constraint, AbortOrigin::Commit, now);
                    return Ok(Err(AbortReason::Constraint));
                }
                Err(e) => return Err(e),
            }
        }
        self.serial += 1;
        let state = self.txns.get_mut(&txn).expect("validated txn exists");
        let writes: BTreeSet<ResourceId> = state.write_buffer.keys().copied().collect();
        if !writes.is_empty() {
            self.committed_writes.push((self.serial, writes));
        }
        state.phase = OccPhase::Committed;
        self.tracer.emit(now, TraceEvent::Committed { txn });
        self.gc_committed_writes();
        Ok(Ok(()))
    }

    fn finish_abort(
        &mut self,
        txn: TxnId,
        reason: AbortReason,
        origin: AbortOrigin,
        now: Timestamp,
    ) {
        if let Some(state) = self.txns.get_mut(&txn) {
            state.phase = OccPhase::Aborted;
            state.write_buffer.clear();
            state.snapshot.clear();
        }
        self.tracer.emit(now, TraceEvent::Aborted { txn, reason, origin });
    }

    /// User abort.
    pub fn abort(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()> {
        let state = self.txn_mut(txn)?;
        if matches!(state.phase, OccPhase::Committed | OccPhase::Aborted) {
            return Err(PstmError::InvalidState {
                txn,
                action: "abort",
                state: phase_name(state.phase),
            });
        }
        self.finish_abort(txn, AbortReason::User, AbortOrigin::User, now);
        Ok(())
    }

    /// Disconnection: free under OCC (no locks held), only the phase is
    /// tracked so the state machine stays honest.
    pub fn sleep(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()> {
        let state = self.txn_mut(txn)?;
        if state.phase != OccPhase::Reading {
            return Err(PstmError::InvalidState {
                txn,
                action: "sleep",
                state: phase_name(state.phase),
            });
        }
        state.phase = OccPhase::Sleeping;
        self.tracer.emit(now, TraceEvent::TxnSlept { txn });
        Ok(())
    }

    /// Reconnection. Never aborts here: the price of the long sleep is
    /// paid at validation time.
    pub fn awake(&mut self, txn: TxnId, now: Timestamp) -> PstmResult<()> {
        let state = self.txn_mut(txn)?;
        if state.phase != OccPhase::Sleeping {
            return Err(PstmError::InvalidState {
                txn,
                action: "awake",
                state: phase_name(state.phase),
            });
        }
        state.phase = OccPhase::Reading;
        self.tracer.emit(now, TraceEvent::TxnAwoke { txn });
        Ok(())
    }

    /// Drops committed write sets no active transaction can still
    /// validate against.
    fn gc_committed_writes(&mut self) {
        let min_start = self
            .txns
            .values()
            .filter(|t| matches!(t.phase, OccPhase::Reading | OccPhase::Sleeping))
            .map(|t| t.start_serial)
            .min()
            .unwrap_or(self.serial);
        self.committed_writes.retain(|(s, _)| *s > min_start);
    }
}

fn phase_name(p: OccPhase) -> &'static str {
    match p {
        OccPhase::Reading => "reading",
        OccPhase::Sleeping => "sleeping",
        OccPhase::Committed => "committed",
        OccPhase::Aborted => "aborted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_storage::{ColumnDef, Constraint, Row, TableSchema};
    use pstm_types::{MemberId, ValueKind};

    fn setup() -> (OccManager, Vec<ResourceId>) {
        let db = Arc::new(Database::new());
        let schema = TableSchema::new(
            "Obj",
            vec![ColumnDef::new("id", ValueKind::Int), ColumnDef::new("v", ValueKind::Int)],
        )
        .unwrap();
        let table = db.create_table(schema, vec![Constraint::non_negative("v>=0", 1)]).unwrap();
        let boot = TxnId(1);
        db.begin(boot).unwrap();
        let mut bindings = BindingRegistry::new();
        let mut rs = Vec::new();
        for i in 0..3 {
            let row =
                db.insert(boot, table, Row::new(vec![Value::Int(i), Value::Int(100)])).unwrap();
            let o = bindings.bind_object(table, row, &[(MemberId::ATOMIC, 1)]).unwrap();
            rs.push(ResourceId::atomic(o));
        }
        db.commit(boot).unwrap();
        (OccManager::new(db, bindings), rs)
    }

    fn t(i: u64) -> TxnId {
        TxnId(100 + i)
    }

    const T0: Timestamp = Timestamp(0);

    #[test]
    fn solo_transaction_commits() {
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        let out = m.execute(t(1), rs[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert_eq!(out, ExecOutcome::Completed(Value::Int(99)));
        assert_eq!(m.commit(t(1), T0).unwrap(), Ok(()));
        let b = m.bindings.resolve(rs[0]).unwrap();
        assert_eq!(m.db.get_col(b.table, b.row, b.column).unwrap(), Value::Int(99));
    }

    #[test]
    fn overlapping_writers_one_validates_one_dies() {
        // The rollback the paper's intro predicts: two concurrent
        // subtractors — semantically compatible! — but OCC knows nothing
        // of semantics; the second to commit fails validation.
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        m.begin(t(2), T0).unwrap();
        m.execute(t(1), rs[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        m.execute(t(2), rs[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert_eq!(m.commit(t(1), T0).unwrap(), Ok(()));
        assert_eq!(m.commit(t(2), T0).unwrap(), Err(AbortReason::Validation));
        assert_eq!(m.stats().aborted_validation, 1);
        // Only the first subtraction landed.
        let b = m.bindings.resolve(rs[0]).unwrap();
        assert_eq!(m.db.get_col(b.table, b.row, b.column).unwrap(), Value::Int(99));
    }

    #[test]
    fn disjoint_transactions_both_commit() {
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        m.begin(t(2), T0).unwrap();
        m.execute(t(1), rs[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        m.execute(t(2), rs[1], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert_eq!(m.commit(t(1), T0).unwrap(), Ok(()));
        assert_eq!(m.commit(t(2), T0).unwrap(), Ok(()));
    }

    #[test]
    fn reader_invalidated_by_committed_writer() {
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        m.execute(t(1), rs[0], ScalarOp::Read, T0).unwrap();
        m.begin(t(2), T0).unwrap();
        m.execute(t(2), rs[0], ScalarOp::Assign(Value::Int(5)), T0).unwrap();
        assert_eq!(m.commit(t(2), T0).unwrap(), Ok(()));
        // t1 read a value that a later committer overwrote.
        assert_eq!(m.commit(t(1), T0).unwrap(), Err(AbortReason::Validation));
    }

    #[test]
    fn pure_readers_coexist() {
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        m.begin(t(2), T0).unwrap();
        m.execute(t(1), rs[0], ScalarOp::Read, T0).unwrap();
        m.execute(t(2), rs[0], ScalarOp::Read, T0).unwrap();
        assert_eq!(m.commit(t(1), T0).unwrap(), Ok(()));
        assert_eq!(m.commit(t(2), T0).unwrap(), Ok(()));
    }

    #[test]
    fn sleep_holds_no_locks_but_widens_validation_window() {
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        m.execute(t(1), rs[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        m.sleep(t(1), T0).unwrap();

        // A second transaction proceeds unhindered (no locks) ...
        m.begin(t(2), T0).unwrap();
        m.execute(t(2), rs[0], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
        assert_eq!(m.commit(t(2), T0).unwrap(), Ok(()));

        // ... and the sleeper pays at validation.
        m.awake(t(1), T0).unwrap();
        assert_eq!(m.commit(t(1), T0).unwrap(), Err(AbortReason::Validation));
    }

    #[test]
    fn constraint_violation_in_write_phase() {
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        m.execute(t(1), rs[0], ScalarOp::Sub(Value::Int(200)), T0).unwrap();
        assert_eq!(m.commit(t(1), T0).unwrap(), Err(AbortReason::Constraint));
        let b = m.bindings.resolve(rs[0]).unwrap();
        assert_eq!(m.db.get_col(b.table, b.row, b.column).unwrap(), Value::Int(100));
    }

    #[test]
    fn snapshot_isolation_within_txn() {
        // A transaction sees its own writes, not later committed state.
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        m.execute(t(1), rs[0], ScalarOp::Sub(Value::Int(10)), T0).unwrap();
        let out = m.execute(t(1), rs[0], ScalarOp::Read, T0).unwrap();
        assert_eq!(out, ExecOutcome::Completed(Value::Int(90)));
    }

    #[test]
    fn state_machine_guards() {
        let (mut m, rs) = setup();
        m.begin(t(1), T0).unwrap();
        assert!(m.begin(t(1), T0).is_err());
        assert!(m.awake(t(1), T0).is_err());
        m.commit(t(1), T0).unwrap().unwrap();
        assert!(m.execute(t(1), rs[0], ScalarOp::Read, T0).is_err());
        assert!(m.commit(t(1), T0).is_err());
        assert!(m.abort(t(1), T0).is_err());
        assert!(m.execute(t(9), rs[0], ScalarOp::Read, T0).is_err());
    }

    #[test]
    fn gc_prunes_old_write_sets() {
        let (mut m, rs) = setup();
        for i in 1..=20 {
            m.begin(t(i), T0).unwrap();
            m.execute(t(i), rs[(i % 3) as usize], ScalarOp::Sub(Value::Int(1)), T0).unwrap();
            m.commit(t(i), T0).unwrap().unwrap();
        }
        // No active transactions: everything prunable.
        assert!(m.committed_writes.is_empty(), "gc should have drained the log");
    }
}
