//! Property tests for the optimistic comparator: conservation under
//! random workloads and abort-rate dominance under rising contention.

use proptest::prelude::*;
use pstm_occ::OccManager;
use pstm_types::{ExecOutcome, ResourceId, ScalarOp, Timestamp, TxnId, Value};
use pstm_workload::counter_world;

const INITIAL: i64 = 100_000;

fn world(objects: usize) -> (OccManager, Vec<ResourceId>) {
    let w = counter_world(objects, INITIAL).unwrap();
    (OccManager::new(w.db.clone(), w.bindings.clone()), w.resources)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever interleaving of unit subtractions runs, the final counter
    /// equals INITIAL − (committed subtractions on it): validation-failed
    /// transactions leave no trace.
    #[test]
    fn prop_conservation_under_random_interleaving(
        plan in prop::collection::vec((0usize..3, any::<bool>()), 1..60),
    ) {
        let (mut occ, rs) = world(3);
        let mut open: Vec<(TxnId, usize)> = Vec::new();
        let mut committed_subs = [0i64; 3];
        let mut next_id = 1u64;
        let t0 = Timestamp::ZERO;
        for (obj, start_new) in plan {
            if start_new || open.is_empty() {
                let txn = TxnId(next_id);
                next_id += 1;
                occ.begin(txn, t0).unwrap();
                let out = occ.execute(txn, rs[obj], ScalarOp::Sub(Value::Int(1)), t0).unwrap();
                prop_assert!(matches!(out, ExecOutcome::Completed(_)), "OCC never waits");
                open.push((txn, obj));
            } else {
                let (txn, obj) = open.remove(0);
                if occ.commit(txn, t0).unwrap().is_ok() {
                    committed_subs[obj] += 1;
                }
            }
        }
        for (txn, obj) in open {
            if occ.commit(txn, t0).unwrap().is_ok() {
                committed_subs[obj] += 1;
            }
        }
        // Read each final value through a throwaway read-only probe
        // transaction (fresh snapshot = current committed state).
        for (i, r) in rs.iter().enumerate() {
            let rd = TxnId(900_000 + i as u64);
            occ.begin(rd, t0).unwrap();
            let out = occ.execute(rd, *r, ScalarOp::Read, t0).unwrap();
            let val = match out {
                ExecOutcome::Completed(Value::Int(v)) => v,
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            };
            occ.abort(rd, t0).unwrap();
            prop_assert_eq!(val, INITIAL - committed_subs[i]);
        }
    }
}

/// Contention monotonicity: with everything on one object, OCC aborts at
/// least as much as with load spread over many objects.
#[test]
fn contention_increases_validation_failures() {
    let run = |objects: usize| -> u64 {
        let (mut occ, rs) = world(objects);
        let t0 = Timestamp::ZERO;
        // 40 overlapping transactions round-robin over the objects, all
        // open simultaneously, then committed in order.
        for i in 0..40u64 {
            occ.begin(TxnId(i + 1), t0).unwrap();
            occ.execute(TxnId(i + 1), rs[(i as usize) % objects], ScalarOp::Sub(Value::Int(1)), t0)
                .unwrap();
        }
        for i in 0..40u64 {
            let _ = occ.commit(TxnId(i + 1), t0).unwrap();
        }
        occ.stats().aborted_validation
    };
    let contended = run(1);
    let spread = run(8);
    assert!(contended > spread, "one object: {contended} aborts vs eight: {spread}");
    assert_eq!(contended, 39, "all but the first committer fail validation");
}
