//! The waits-for graph.
//!
//! Nodes are transactions; an edge `A → B` means "A waits for a lock B
//! holds". A cycle is a deadlock. The graph is shared machinery: the
//! [`crate::manager::LockManager`] rebuilds it from its queues, and the
//! GTM maintains one incrementally for its own waiting sets.

use pstm_types::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// A directed waits-for graph over transactions.
///
/// Backed by `BTreeMap`/`BTreeSet` so iteration order — and therefore
/// victim selection — is deterministic across runs.
#[derive(Clone, Debug, Default)]
pub struct WaitsForGraph {
    edges: BTreeMap<TxnId, BTreeSet<TxnId>>,
}

impl WaitsForGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        WaitsForGraph::default()
    }

    /// Adds the edge `waiter → holder`. Self-edges are ignored (a
    /// transaction never waits for itself — upgrades are handled by the
    /// lock queues, not the graph).
    pub fn add_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if waiter != holder {
            self.edges.entry(waiter).or_default().insert(holder);
        }
    }

    /// Removes a specific edge.
    pub fn remove_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if let Some(out) = self.edges.get_mut(&waiter) {
            out.remove(&holder);
            if out.is_empty() {
                self.edges.remove(&waiter);
            }
        }
    }

    /// Removes a transaction and every edge touching it.
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        self.edges.retain(|_, out| {
            out.remove(&txn);
            !out.is_empty()
        });
    }

    /// Discards all edges.
    pub fn clear(&mut self) {
        self.edges.clear();
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Whether `waiter → holder` exists.
    #[must_use]
    pub fn has_edge(&self, waiter: TxnId, holder: TxnId) -> bool {
        self.edges.get(&waiter).is_some_and(|out| out.contains(&holder))
    }

    /// All edges as `(waiter, holder)` pairs, in sorted order (the input
    /// shape the DOT exporter takes).
    pub fn edges(&self) -> impl Iterator<Item = (TxnId, TxnId)> + '_ {
        self.edges.iter().flat_map(|(waiter, out)| out.iter().map(move |holder| (*waiter, *holder)))
    }

    /// Finds one cycle, if any, returned in waits-for order (each element
    /// waits for the next; the last waits for the first). Deterministic:
    /// the search explores nodes in `TxnId` order.
    #[must_use]
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<TxnId, Color> =
            self.edges.keys().map(|t| (*t, Color::White)).collect();
        for out in self.edges.values() {
            for t in out {
                color.entry(*t).or_insert(Color::White);
            }
        }

        // Iterative DFS carrying the path. Each frame owns its successor
        // snapshot, collected once on first visit (not per step).
        let nodes: Vec<TxnId> = color.keys().copied().collect();
        for start in nodes {
            if color[&start] != Color::White {
                continue;
            }
            let succ_of = |node: TxnId| -> Vec<TxnId> {
                self.edges.get(&node).map(|s| s.iter().copied().collect()).unwrap_or_default()
            };
            let mut stack: Vec<(TxnId, Vec<TxnId>, usize)> = vec![(start, succ_of(start), 0)];
            color.insert(start, Color::Gray);
            let mut path: Vec<TxnId> = vec![start];
            while let Some((node, succ, idx)) = stack.pop() {
                if idx < succ.len() {
                    let next = succ[idx];
                    stack.push((node, succ, idx + 1));
                    match color[&next] {
                        Color::Gray => {
                            // Found a back-edge: the cycle is the path
                            // suffix starting at `next`.
                            let pos = path.iter().position(|t| *t == next).expect("gray on path");
                            return Some(path[pos..].to_vec());
                        }
                        Color::White => {
                            color.insert(next, Color::Gray);
                            path.push(next);
                            stack.push((next, succ_of(next), 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    path.pop();
                }
            }
        }
        None
    }

    /// Finds a cycle reachable from `start` (a cycle created by a new
    /// wait must pass through the new waiter, so searching from it is
    /// sufficient — and far cheaper than a full-graph scan).
    #[must_use]
    pub fn find_cycle_from(&self, start: TxnId) -> Option<Vec<TxnId>> {
        let sub = self.reachable_subgraph(start);
        sub.find_cycle()
    }

    fn reachable_subgraph(&self, start: TxnId) -> WaitsForGraph {
        let mut sub = WaitsForGraph::new();
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            if let Some(out) = self.edges.get(&node) {
                for next in out {
                    sub.add_edge(node, *next);
                    stack.push(*next);
                }
            }
        }
        sub
    }

    /// Detects a deadlock and picks the *youngest* member of the cycle
    /// (highest [`TxnId`] — ids are allocated in arrival order) as victim.
    #[must_use]
    pub fn pick_victim(&self) -> Option<(TxnId, Vec<TxnId>)> {
        let cycle = self.find_cycle()?;
        let victim = *cycle.iter().max().expect("cycles are non-empty");
        Some((victim, cycle))
    }

    /// [`WaitsForGraph::pick_victim`] restricted to cycles reachable from
    /// `start` — the fast path after a single new wait.
    #[must_use]
    pub fn pick_victim_from(&self, start: TxnId) -> Option<(TxnId, Vec<TxnId>)> {
        let cycle = self.find_cycle_from(start)?;
        let victim = *cycle.iter().max().expect("cycles are non-empty");
        Some((victim, cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn no_cycle_in_dag() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(1), t(3));
        assert!(g.find_cycle().is_none());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
        let (victim, _) = g.pick_victim().unwrap();
        assert_eq!(victim, t(2), "youngest is the victim");
    }

    #[test]
    fn long_cycle_detected_in_order() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(4));
        g.add_edge(t(4), t(1));
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 4);
        // Each member waits for the next (cyclically).
        for i in 0..cycle.len() {
            assert!(g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(1));
        assert_eq!(g.edge_count(), 0);
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn remove_txn_breaks_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(1));
        assert!(g.find_cycle().is_some());
        g.remove_txn(t(2));
        assert!(g.find_cycle().is_none());
        assert_eq!(g.edge_count(), 1); // only 3 → 1 remains
    }

    #[test]
    fn remove_edge_and_clear() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        g.remove_edge(t(2), t(1));
        assert!(g.find_cycle().is_none());
        g.add_edge(t(2), t(1));
        g.clear();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn disjoint_components_searched() {
        let mut g = WaitsForGraph::new();
        g.add_edge(t(1), t(2)); // acyclic component
        g.add_edge(t(10), t(11));
        g.add_edge(t(11), t(10)); // cyclic component
        let cycle = g.find_cycle().unwrap();
        assert!(cycle.contains(&t(10)) && cycle.contains(&t(11)));
    }

    proptest! {
        /// A graph built as a strict "smaller waits for larger" order can
        /// never contain a cycle.
        #[test]
        fn prop_ordered_edges_acyclic(edges in prop::collection::vec((0u64..50, 0u64..50), 0..200)) {
            let mut g = WaitsForGraph::new();
            for (a, b) in edges {
                let (lo, hi) = (a.min(b), a.max(b));
                if lo != hi {
                    g.add_edge(t(lo), t(hi));
                }
            }
            prop_assert!(g.find_cycle().is_none());
        }

        /// Any reported cycle really is one: every hop is an edge.
        #[test]
        fn prop_reported_cycles_are_real(edges in prop::collection::vec((0u64..12, 0u64..12), 0..60)) {
            let mut g = WaitsForGraph::new();
            for (a, b) in edges {
                g.add_edge(t(a), t(b));
            }
            if let Some(cycle) = g.find_cycle() {
                prop_assert!(!cycle.is_empty());
                for i in 0..cycle.len() {
                    prop_assert!(g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
                }
            }
        }
    }
}
