//! The lock manager: per-resource FIFO queues with upgrade priority,
//! deadlock detection over a rebuilt waits-for graph, and timeout scans.
//!
//! The manager is event-driven and never blocks: [`LockManager::request`]
//! answers immediately, and lock releases return the set of transactions
//! whose queued requests just became grantable so the caller (simulator or
//! transaction manager) can resume them.

use crate::graph::WaitsForGraph;
use crate::mode::LockMode;
use pstm_obs::{Ctr, MetricsRegistry, TraceEvent, Tracer};
use pstm_types::{PstmError, PstmResult, ResourceId, Timestamp, TxnId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Outcome of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held; the caller may proceed.
    Granted,
    /// The request was queued; the caller must suspend the transaction.
    Waiting,
}

#[derive(Clone, Copy, Debug)]
struct Request {
    txn: TxnId,
    mode: LockMode,
    since: Timestamp,
    /// An upgrade request leaves the original shared grant in place.
    is_upgrade: bool,
}

#[derive(Debug, Default)]
struct LockQueue {
    granted: Vec<(TxnId, LockMode)>,
    waiting: VecDeque<Request>,
}

impl LockQueue {
    fn granted_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.granted.iter().find(|(t, _)| *t == txn).map(|(_, m)| *m)
    }

    /// Whether `req` can be granted right now.
    fn grantable(&self, req: &Request) -> bool {
        self.granted.iter().all(|(holder, mode)| {
            if req.is_upgrade && *holder == req.txn {
                true // its own shared grant does not block the upgrade
            } else {
                req.mode.compatible_with(*mode)
            }
        })
    }

    fn grant(&mut self, req: Request) {
        if req.is_upgrade {
            for entry in &mut self.granted {
                if entry.0 == req.txn {
                    entry.1 = entry.1.max(req.mode);
                    return;
                }
            }
        }
        self.granted.push((req.txn, req.mode));
    }

    /// Promotes waiters in FIFO order; returns promoted transactions.
    fn promote(&mut self) -> Vec<TxnId> {
        let mut promoted = Vec::new();
        while let Some(front) = self.waiting.front() {
            if self.grantable(front) {
                let req = self.waiting.pop_front().expect("front exists");
                promoted.push(req.txn);
                self.grant(req);
            } else {
                break;
            }
        }
        promoted
    }
}

/// Per-run lock statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests granted immediately.
    pub immediate_grants: u64,
    /// Requests that had to wait.
    pub waits: u64,
    /// Upgrades requested.
    pub upgrades: u64,
    /// Deadlock victims chosen.
    pub deadlock_victims: u64,
}

impl LockStats {
    /// Projects the lock counters out of an obs registry — the only way
    /// lock stats are produced, so they cannot drift from the trace.
    #[must_use]
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        LockStats {
            immediate_grants: reg.counter(Ctr::LockImmediateGrants),
            waits: reg.counter(Ctr::LockWaits),
            upgrades: reg.counter(Ctr::LockUpgrades),
            deadlock_victims: reg.counter(Ctr::DeadlockVictims),
        }
    }
}

/// The lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    queues: BTreeMap<ResourceId, LockQueue>,
    /// Resources each transaction currently holds.
    held: BTreeMap<TxnId, BTreeSet<ResourceId>>,
    /// The single resource each waiting transaction is queued on.
    waiting_on: BTreeMap<TxnId, ResourceId>,
    tracer: Tracer,
}

impl LockManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Replaces the tracer — used by an owning scheduler to share one
    /// registry/trace with its lock table.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer this manager emits into.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Requests `mode` on `resource` for `txn` at time `now`.
    ///
    /// Rules:
    /// * a transaction may have at most one outstanding (waiting) request;
    /// * re-requesting a mode already covered by the current grant is a
    ///   no-op `Granted`;
    /// * a shared holder requesting exclusive performs an *upgrade*:
    ///   granted immediately if it is the sole holder, otherwise queued at
    ///   the front (upgrade priority);
    /// * new requests respect FIFO: they queue behind existing waiters
    ///   even when compatible with the granted set (no barging).
    pub fn request(
        &mut self,
        txn: TxnId,
        resource: ResourceId,
        mode: LockMode,
        now: Timestamp,
    ) -> PstmResult<LockOutcome> {
        if let Some(r) = self.waiting_on.get(&txn) {
            return Err(PstmError::InvalidState {
                txn,
                action: "request a second lock while waiting",
                state: if *r == resource { "waiting on the same resource" } else { "waiting" },
            });
        }
        let queue = self.queues.entry(resource).or_default();
        let exclusive = mode == LockMode::Exclusive;
        if let Some(held_mode) = queue.granted_mode(txn) {
            if held_mode == mode || held_mode == LockMode::Exclusive {
                self.tracer.emit(now, TraceEvent::LockGranted { txn, resource, exclusive });
                return Ok(LockOutcome::Granted); // already covered
            }
            // Upgrade S → X.
            debug_assert!(held_mode.upgrades_to(mode));
            self.tracer.emit(now, TraceEvent::LockUpgrade { txn, resource });
            let req = Request { txn, mode, since: now, is_upgrade: true };
            if queue.grantable(&req) {
                queue.grant(req);
                self.tracer.emit(now, TraceEvent::LockGranted { txn, resource, exclusive });
                return Ok(LockOutcome::Granted);
            }
            queue.waiting.push_front(req);
            let queue_depth = queue.waiting.len() as u32;
            self.waiting_on.insert(txn, resource);
            self.tracer
                .emit(now, TraceEvent::LockWaiting { txn, resource, exclusive, queue_depth });
            return Ok(LockOutcome::Waiting);
        }
        let req = Request { txn, mode, since: now, is_upgrade: false };
        if queue.waiting.is_empty() && queue.grantable(&req) {
            queue.grant(req);
            self.held.entry(txn).or_default().insert(resource);
            self.tracer.emit(now, TraceEvent::LockGranted { txn, resource, exclusive });
            Ok(LockOutcome::Granted)
        } else {
            queue.waiting.push_back(req);
            let queue_depth = queue.waiting.len() as u32;
            self.waiting_on.insert(txn, resource);
            self.held.entry(txn).or_default().insert(resource); // reserved; finalized on grant
            self.tracer
                .emit(now, TraceEvent::LockWaiting { txn, resource, exclusive, queue_depth });
            Ok(LockOutcome::Waiting)
        }
    }

    /// Releases every lock and queued request of `txn` (commit or abort —
    /// strict 2PL releases everything at once). Returns the transactions
    /// promoted from waiting to granted, in promotion order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        let resources = self.held.remove(&txn).unwrap_or_default();
        self.waiting_on.remove(&txn);
        let mut promoted = Vec::new();
        for resource in resources {
            if let Some(queue) = self.queues.get_mut(&resource) {
                queue.granted.retain(|(t, _)| *t != txn);
                queue.waiting.retain(|r| r.txn != txn);
                for p in queue.promote() {
                    self.waiting_on.remove(&p);
                    promoted.push(p);
                }
                if queue.granted.is_empty() && queue.waiting.is_empty() {
                    self.queues.remove(&resource);
                }
            }
        }
        promoted
    }

    /// The mode `txn` currently holds on `resource`, if granted.
    #[must_use]
    pub fn held_mode(&self, txn: TxnId, resource: ResourceId) -> Option<LockMode> {
        self.queues.get(&resource).and_then(|q| q.granted_mode(txn))
    }

    /// Whether `txn` is waiting (for anything), and on what.
    #[must_use]
    pub fn waiting_resource(&self, txn: TxnId) -> Option<ResourceId> {
        self.waiting_on.get(&txn).copied()
    }

    /// Current holders of `resource`.
    #[must_use]
    pub fn holders(&self, resource: ResourceId) -> Vec<(TxnId, LockMode)> {
        self.queues.get(&resource).map(|q| q.granted.clone()).unwrap_or_default()
    }

    /// Number of queued waiters on `resource`.
    #[must_use]
    pub fn waiter_count(&self, resource: ResourceId) -> usize {
        self.queues.get(&resource).map(|q| q.waiting.len()).unwrap_or(0)
    }

    /// Builds the waits-for graph from the queues: each waiter waits for
    /// every incompatible granted holder and for every earlier queued
    /// waiter it is incompatible with (FIFO means those will be granted
    /// first).
    #[must_use]
    pub fn waits_for_graph(&self) -> WaitsForGraph {
        let mut g = WaitsForGraph::new();
        for queue in self.queues.values() {
            for (i, w) in queue.waiting.iter().enumerate() {
                for (holder, mode) in &queue.granted {
                    let blocks = if w.is_upgrade && *holder == w.txn {
                        false
                    } else {
                        !w.mode.compatible_with(*mode)
                    };
                    if blocks {
                        g.add_edge(w.txn, *holder);
                    }
                }
                for earlier in queue.waiting.iter().take(i) {
                    if !w.mode.compatible_with(earlier.mode) {
                        g.add_edge(w.txn, earlier.txn);
                    }
                }
            }
        }
        g
    }

    /// Detects a deadlock; returns the chosen victim and the cycle. The
    /// caller is responsible for aborting the victim (which must include
    /// calling [`LockManager::release_all`]).
    pub fn detect_deadlock(&mut self) -> Option<(TxnId, Vec<TxnId>)> {
        let result = self.waits_for_graph().pick_victim();
        if let Some((victim, cycle)) = &result {
            self.tracer
                .emit_unclocked(TraceEvent::DeadlockVictim { txn: *victim, cycle: cycle.clone() });
        }
        result
    }

    /// Deadlock detection scoped to cycles reachable from `waiter` — use
    /// after queuing a single new request (a new cycle must pass through
    /// it); much cheaper than the full scan under deep queues.
    pub fn detect_deadlock_from(&mut self, waiter: TxnId) -> Option<(TxnId, Vec<TxnId>)> {
        let result = self.waits_for_graph().pick_victim_from(waiter);
        if let Some((victim, cycle)) = &result {
            self.tracer
                .emit_unclocked(TraceEvent::DeadlockVictim { txn: *victim, cycle: cycle.clone() });
        }
        result
    }

    /// Waiters whose request has been pending longer than `timeout`.
    #[must_use]
    pub fn timed_out_waiters(&self, now: Timestamp, timeout: pstm_types::Duration) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .queues
            .values()
            .flat_map(|q| q.waiting.iter())
            .filter(|r| now.since(r.since) >= timeout)
            .map(|r| r.txn)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Snapshot of the counters, projected from the tracer's registry.
    #[must_use]
    pub fn stats(&self) -> LockStats {
        self.tracer.with_registry(LockStats::from_registry)
    }

    /// The current waits-for graph rendered as Graphviz DOT.
    #[must_use]
    pub fn waits_for_dot(&self) -> String {
        pstm_obs::waits_for_dot(self.waits_for_graph().edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstm_types::{Duration, ObjectId};

    fn res(i: u32) -> ResourceId {
        ResourceId::atomic(ObjectId(i))
    }

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    const T0: Timestamp = Timestamp(0);

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(lm.request(t(1), res(1), LockMode::Shared, T0).unwrap(), LockOutcome::Granted);
        assert_eq!(lm.request(t(2), res(1), LockMode::Shared, T0).unwrap(), LockOutcome::Granted);
        assert_eq!(lm.holders(res(1)).len(), 2);
    }

    #[test]
    fn exclusive_excludes() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap();
        assert_eq!(lm.request(t(2), res(1), LockMode::Shared, T0).unwrap(), LockOutcome::Waiting);
        assert_eq!(
            lm.request(t(3), res(1), LockMode::Exclusive, T0).unwrap(),
            LockOutcome::Waiting
        );
        assert_eq!(lm.waiter_count(res(1)), 2);
        assert_eq!(lm.waiting_resource(t(2)), Some(res(1)));
    }

    #[test]
    fn release_promotes_fifo() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap();
        lm.request(t(2), res(1), LockMode::Shared, T0).unwrap();
        lm.request(t(3), res(1), LockMode::Shared, T0).unwrap();
        let promoted = lm.release_all(t(1));
        assert_eq!(promoted, vec![t(2), t(3)], "both compatible shareds promoted");
        assert_eq!(lm.holders(res(1)).len(), 2);
        assert!(lm.waiting_resource(t(2)).is_none());
    }

    #[test]
    fn no_barging_past_waiters() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Shared, T0).unwrap();
        lm.request(t(2), res(1), LockMode::Exclusive, T0).unwrap(); // waits
                                                                    // t3's shared is compatible with t1's grant but must queue behind
                                                                    // t2 to avoid starving the exclusive request.
        assert_eq!(lm.request(t(3), res(1), LockMode::Shared, T0).unwrap(), LockOutcome::Waiting);
        let promoted = lm.release_all(t(1));
        assert_eq!(promoted, vec![t(2)], "exclusive goes first");
        let promoted = lm.release_all(t(2));
        assert_eq!(promoted, vec![t(3)]);
    }

    #[test]
    fn re_request_held_mode_is_noop() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap();
        assert_eq!(lm.request(t(1), res(1), LockMode::Shared, T0).unwrap(), LockOutcome::Granted);
        assert_eq!(
            lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap(),
            LockOutcome::Granted
        );
        assert_eq!(lm.holders(res(1)).len(), 1);
    }

    #[test]
    fn sole_holder_upgrades_immediately() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Shared, T0).unwrap();
        assert_eq!(
            lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap(),
            LockOutcome::Granted
        );
        assert_eq!(lm.held_mode(t(1), res(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn contended_upgrade_waits_with_priority() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Shared, T0).unwrap();
        lm.request(t(2), res(1), LockMode::Shared, T0).unwrap();
        lm.request(t(3), res(1), LockMode::Exclusive, T0).unwrap(); // queued
                                                                    // t1 upgrades: goes to the FRONT, ahead of t3.
        assert_eq!(
            lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap(),
            LockOutcome::Waiting
        );
        let promoted = lm.release_all(t(2));
        assert_eq!(promoted, vec![t(1)], "upgrade wins over queued exclusive");
        assert_eq!(lm.held_mode(t(1), res(1)), Some(LockMode::Exclusive));
        let promoted = lm.release_all(t(1));
        assert_eq!(promoted, vec![t(3)]);
    }

    #[test]
    fn upgrade_deadlock_detected_and_victim_is_youngest() {
        let mut lm = LockManager::new();
        // The paper's §II scenario: both read, both try to write.
        lm.request(t(1), res(1), LockMode::Shared, T0).unwrap();
        lm.request(t(2), res(1), LockMode::Shared, T0).unwrap();
        assert_eq!(
            lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap(),
            LockOutcome::Waiting
        );
        assert_eq!(
            lm.request(t(2), res(1), LockMode::Exclusive, T0).unwrap(),
            LockOutcome::Waiting
        );
        let (victim, cycle) = lm.detect_deadlock().expect("upgrade deadlock");
        assert_eq!(victim, t(2));
        assert_eq!(cycle.len(), 2);
        // Aborting the victim unblocks the other.
        let promoted = lm.release_all(t(2));
        assert_eq!(promoted, vec![t(1)]);
        assert_eq!(lm.held_mode(t(1), res(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn cross_resource_deadlock() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap();
        lm.request(t(2), res(2), LockMode::Exclusive, T0).unwrap();
        lm.request(t(1), res(2), LockMode::Exclusive, T0).unwrap(); // waits on t2
        lm.request(t(2), res(1), LockMode::Exclusive, T0).unwrap(); // waits on t1
        let (victim, cycle) = lm.detect_deadlock().unwrap();
        assert_eq!(victim, t(2));
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn no_false_deadlocks() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap();
        lm.request(t(2), res(1), LockMode::Exclusive, T0).unwrap();
        lm.request(t(3), res(2), LockMode::Shared, T0).unwrap();
        assert!(lm.detect_deadlock().is_none());
    }

    #[test]
    fn second_request_while_waiting_is_an_error() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap();
        lm.request(t(2), res(1), LockMode::Exclusive, T0).unwrap();
        assert!(matches!(
            lm.request(t(2), res(2), LockMode::Shared, T0).unwrap_err(),
            PstmError::InvalidState { .. }
        ));
    }

    #[test]
    fn timeout_scan_finds_old_waiters() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Exclusive, Timestamp(0)).unwrap();
        lm.request(t(2), res(1), LockMode::Exclusive, Timestamp::from_millis(10)).unwrap();
        lm.request(t(3), res(1), LockMode::Exclusive, Timestamp::from_millis(500)).unwrap();
        let timed_out =
            lm.timed_out_waiters(Timestamp::from_millis(600), Duration::from_millis(200));
        assert_eq!(timed_out, vec![t(2)]);
    }

    #[test]
    fn release_of_waiter_removes_queue_entry() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap();
        lm.request(t(2), res(1), LockMode::Exclusive, T0).unwrap();
        lm.release_all(t(2)); // waiter gives up
        assert_eq!(lm.waiter_count(res(1)), 0);
        let promoted = lm.release_all(t(1));
        assert!(promoted.is_empty());
        assert!(lm.holders(res(1)).is_empty());
    }

    #[test]
    fn stats_track_activity() {
        let mut lm = LockManager::new();
        lm.request(t(1), res(1), LockMode::Shared, T0).unwrap();
        lm.request(t(2), res(1), LockMode::Shared, T0).unwrap();
        lm.request(t(1), res(1), LockMode::Exclusive, T0).unwrap(); // upgrade, waits
        let s = lm.stats();
        assert_eq!(s.immediate_grants, 2);
        assert_eq!(s.waits, 1);
        assert_eq!(s.upgrades, 1);
    }
}
