//! Classical shared/exclusive lock modes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lock mode for the 2PL baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared (read) lock — compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock — compatible with nothing.
    Exclusive,
}

impl LockMode {
    /// Classical S/X compatibility.
    #[must_use]
    pub fn compatible_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// Whether moving from `self` to `to` is an upgrade (S → X).
    #[must_use]
    pub fn upgrades_to(self, to: LockMode) -> bool {
        self == LockMode::Shared && to == LockMode::Exclusive
    }

    /// The stronger of two modes.
    #[must_use]
    pub fn max(self, other: LockMode) -> LockMode {
        if self == LockMode::Exclusive || other == LockMode::Exclusive {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LockMode::Shared => "S",
            LockMode::Exclusive => "X",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        assert!(LockMode::Shared.compatible_with(LockMode::Shared));
        assert!(!LockMode::Shared.compatible_with(LockMode::Exclusive));
        assert!(!LockMode::Exclusive.compatible_with(LockMode::Shared));
        assert!(!LockMode::Exclusive.compatible_with(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_direction() {
        assert!(LockMode::Shared.upgrades_to(LockMode::Exclusive));
        assert!(!LockMode::Exclusive.upgrades_to(LockMode::Shared));
        assert!(!LockMode::Shared.upgrades_to(LockMode::Shared));
    }

    #[test]
    fn max_prefers_exclusive() {
        assert_eq!(LockMode::Shared.max(LockMode::Exclusive), LockMode::Exclusive);
        assert_eq!(LockMode::Shared.max(LockMode::Shared), LockMode::Shared);
    }
}
