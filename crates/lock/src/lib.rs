//! `pstm-lock` — a classical lock manager.
//!
//! Provides the locking substrate for the 2PL baseline and the shared
//! deadlock machinery the paper points at in §VII ("classical approaches
//! as timeout or wait-for-graph techniques can be used to detect the
//! deadlock presence"):
//!
//! * [`mode::LockMode`] — shared/exclusive modes with upgrade support;
//! * [`graph::WaitsForGraph`] — an explicit waits-for graph with cycle
//!   detection (used by both the lock manager and the GTM);
//! * [`manager::LockManager`] — FIFO lock queues per [`ResourceId`] with
//!   upgrade priority, deadlock detection with youngest-victim selection,
//!   and timeout scanning.
//!
//! The manager is synchronous: `request` never blocks, it answers
//! `Granted` or `Waiting`, and releases return the transactions whose
//! queued requests became grantable — exactly the shape a discrete-event
//! simulator needs.
//!
//! [`ResourceId`]: pstm_types::ResourceId

#![warn(missing_docs)]

pub mod graph;
pub mod manager;
pub mod mode;

pub use graph::WaitsForGraph;
pub use manager::{LockManager, LockOutcome};
pub use mode::LockMode;
