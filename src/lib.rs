//! **preserial** — pre-serialization of long running transactions.
//!
//! A full reproduction of *"Pre-serialization of long running
//! transactions to improve concurrency in mobile environments"*
//! (Chianese, d'Acierno, Moscato, Picariello — ICDE 2008), built as a
//! Rust workspace. This umbrella crate re-exports the public API of every
//! member crate; see `README.md` for a tour and `DESIGN.md` for the
//! system inventory.
//!
//! The short version:
//!
//! * [`gtm::Gtm`] is the paper's contribution — a hybrid
//!   optimistic/pessimistic Global Transaction Manager in which
//!   semantically compatible operations (Weihl forward commutativity,
//!   the paper's Table I) share object data members concurrently on
//!   virtual copies, reconciled at commit by eqs. (1)–(2), with
//!   disconnected transactions parked in a `Sleeping` state instead of
//!   aborted;
//! * [`twopl::TwoPlManager`] is the strict-2PL comparator;
//! * [`storage::Database`] is the embedded LDBS both run against
//!   (slotted pages, B-tree indexes, WAL + recovery, CHECK constraints);
//! * [`sim`] and [`workload`] emulate the paper's mobile clients;
//! * [`model`] is the closed-form §VI.A model (Figs. 1–2).

pub use pstm_core::{gtm, history, policy, reconcile, sst, state};
pub use pstm_core::{Gtm, GtmConfig, GtmStats, TxnState};

/// The lock manager (shared/exclusive modes, waits-for graphs).
pub mod lock {
    pub use pstm_lock::*;
}

/// The optimistic (backward-validation) comparator.
pub mod occ {
    pub use pstm_occ::*;
}

/// The analytical model of §VI.A.
pub mod model {
    pub use pstm_model::*;
}

/// Tracing & metrics: trace events, sinks, histograms, the registry the
/// per-manager `*Stats` are derived from, and the waits-for DOT exporter.
pub mod obs {
    pub use pstm_obs::*;
}

/// The discrete-event simulator.
pub mod sim {
    pub use pstm_sim::*;
}

/// The embedded storage engine (LDBS).
pub mod storage {
    pub use pstm_storage::*;
}

/// The strict 2PL baseline.
pub mod twopl {
    pub use pstm_twopl::*;
}

/// Foundation types: values, ids, operation classes, Table I.
pub mod types {
    pub use pstm_types::*;
}

/// Workload generators (§VI.B and the §II travel agency).
pub mod workload {
    pub use pstm_workload::*;
}
